package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestSeenSetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seen.set")
	hashes := []uint64{1, 7, 42, 1 << 40, 1<<63 + 5}
	if err := WriteSeenSetFile(path, hashes); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeenSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(hashes) {
		t.Fatalf("round trip: %d entries, want %d", len(got), len(hashes))
	}
	for i := range hashes {
		if got[i] != hashes[i] {
			t.Fatalf("entry %d = %d, want %d", i, got[i], hashes[i])
		}
	}
}

func TestSeenSetEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seen.set")
	if err := WriteSeenSetFile(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeenSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty set round-tripped to %d entries", len(got))
	}
}

func TestSeenSetMissingFileIsEmpty(t *testing.T) {
	got, err := ReadSeenSetFile(filepath.Join(t.TempDir(), "nope.set"))
	if err != nil || got != nil {
		t.Fatalf("missing file = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestSeenSetRejectsUnsorted(t *testing.T) {
	if _, err := MarshalSeenSet([]uint64{3, 2}); err == nil {
		t.Error("marshal accepted an unsorted set")
	}
	if _, err := MarshalSeenSet([]uint64{3, 3}); err == nil {
		t.Error("marshal accepted a duplicate entry")
	}
}

func TestSeenSetRejectsCorruption(t *testing.T) {
	data, err := MarshalSeenSet([]uint64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit: CRC must catch it.
	bad := append([]byte(nil), data...)
	bad[seenHeaderSize+3] ^= 0x10
	if _, err := UnmarshalSeenSet(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("bit flip: err = %v, want ErrChecksum", err)
	}

	// Truncate: length check must catch it.
	if _, err := UnmarshalSeenSet(data[:len(data)-6]); err == nil {
		t.Error("truncated seen-set accepted")
	}

	// Wrong magic.
	bad = append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := UnmarshalSeenSet(bad); err == nil {
		t.Error("wrong magic accepted")
	}

	// Resealed damage: out-of-order payload behind a valid CRC must
	// still be rejected — CRC protects against accidents, the sort
	// invariant protects the binary search.
	resealed := []byte(SeenMagic)
	resealed = append(resealed, data[len(SeenMagic):len(SeenMagic)+4]...) // version
	resealed = appendU64(resealed, 2)
	resealed = appendU64(resealed, 30)
	resealed = appendU64(resealed, 10)
	resealed = appendCRC(resealed)
	if _, err := UnmarshalSeenSet(resealed); err == nil {
		t.Error("resealed out-of-order seen-set accepted")
	}
}

func TestSeenSetWriteIsAtomic(t *testing.T) {
	// An existing artifact must survive a failed write (unwritable temp
	// dir is hard to simulate portably; assert the temp file never
	// lingers and the final file parses).
	dir := t.TempDir()
	path := filepath.Join(dir, "seen.set")
	if err := WriteSeenSetFile(path, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeenSetFile(path, []uint64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp files lingered: %v", entries)
	}
	got, err := ReadSeenSetFile(path)
	if err != nil || len(got) != 3 || got[0] != 4 {
		t.Errorf("second write not visible: (%v, %v)", got, err)
	}
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendCRC(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}
