package snapshot

import (
	"errors"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte(`{"id":"j1","state":"running"}`)
	sealed := SealEnvelope("SHAMJOBM", 3, payload)
	got, err := OpenEnvelope(sealed, "SHAMJOBM", 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	// Empty payloads round-trip too (a zero-length manifest is the
	// codec's problem, not the envelope's).
	if got, err := OpenEnvelope(SealEnvelope("SHAMJOBM", 3, nil), "SHAMJOBM", 3); err != nil || len(got) != 0 {
		t.Fatalf("empty payload: %q, %v", got, err)
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	sealed := SealEnvelope("SHAMJOBM", 1, []byte("payload bytes"))
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"wrong magic", SealEnvelope("SHAMSEEN", 1, []byte("payload bytes")), ErrMagic},
		{"future version", SealEnvelope("SHAMJOBM", 2, []byte("payload bytes")), ErrVersion},
		{"truncated", sealed[:len(sealed)-5], ErrChecksum},
		{"too short", sealed[:8], ErrTruncated},
		{"empty", nil, ErrTruncated},
	}
	for _, tc := range cases {
		if _, err := OpenEnvelope(tc.data, "SHAMJOBM", 1); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Every single-bit flip anywhere in the envelope must be caught.
	for i := range sealed {
		for bit := 0; bit < 8; bit++ {
			damaged := append([]byte(nil), sealed...)
			damaged[i] ^= 1 << bit
			if _, err := OpenEnvelope(damaged, "SHAMJOBM", 1); err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected", i, bit)
			}
		}
	}
}
