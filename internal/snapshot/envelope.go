package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The generic SHAMSNAP-family envelope: a caller-chosen 8-byte magic, a
// version word, an opaque payload, and a trailing CRC-32 over everything
// before it. The seen-set and watch checkpoint hand-roll this shape with
// fixed binary payloads; artifacts whose payload wants to stay evolvable
// (the survey job manifest carries JSON) share these two helpers instead
// of growing a third bespoke codec. The envelope guarantees the family
// contract — corruption anywhere is detected and refused loudly — while
// leaving the payload encoding to the caller.

const envelopeMagicLen = 8

// SealEnvelope wraps payload in the family envelope. magic must be
// exactly 8 bytes (the family convention: "SHAMSNAP", "SHAMSEEN", ...).
func SealEnvelope(magic string, version uint32, payload []byte) []byte {
	if len(magic) != envelopeMagicLen {
		panic(fmt.Sprintf("snapshot: envelope magic %q must be 8 bytes", magic))
	}
	buf := make([]byte, 0, envelopeMagicLen+4+len(payload)+4)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// OpenEnvelope validates magic, version and checksum, returning the
// payload. Corruption anywhere — wrong magic, future version, a flipped
// bit, a truncated tail — is an error, never a silently partial payload.
func OpenEnvelope(data []byte, magic string, version uint32) ([]byte, error) {
	if len(magic) != envelopeMagicLen {
		panic(fmt.Sprintf("snapshot: envelope magic %q must be 8 bytes", magic))
	}
	if len(data) < envelopeMagicLen+4+4 {
		return nil, fmt.Errorf("%w: envelope of %d bytes", ErrTruncated, len(data))
	}
	if string(data[:envelopeMagicLen]) != magic {
		return nil, fmt.Errorf("%w: want magic %q", ErrMagic, magic)
	}
	if v := binary.LittleEndian.Uint32(data[envelopeMagicLen:]); v != version {
		return nil, fmt.Errorf("%w: envelope v%d, this build reads v%d", ErrVersion, v, version)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != sum {
		return nil, fmt.Errorf("%w: envelope crc %08x, stored %08x", ErrChecksum, got, sum)
	}
	return data[envelopeMagicLen+4 : len(data)-4], nil
}
