// Package pdns implements the passive-DNS view of Section 6.2: a
// collector that counts name resolutions observed at cache servers
// (wired to the authoritative server's query hook in the simulation),
// plus a seeded mode that loads historical counts from the registry's
// ground truth, and the Top-N report behind Table 11. A Zipf load
// driver can replay realistic query streams through a live resolver so
// the collection path is exercised end to end.
package pdns

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/dnswire"
	"repro/internal/stats"
)

// DB accumulates resolution counts per domain name.
type DB struct {
	mu     sync.RWMutex
	counts map[string]int64
}

// NewDB returns an empty passive-DNS database.
func NewDB() *DB {
	return &DB{counts: make(map[string]int64)}
}

func normalize(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// Observe records one resolution of name. It is the shape of
// dnsserver.Server.OnQuery, so a collector is attached with:
//
//	srv.OnQuery = func(q dnswire.Question) { db.Observe(q.Name) }
func (db *DB) Observe(name string) {
	db.mu.Lock()
	db.counts[normalize(name)]++
	db.mu.Unlock()
}

// Hook adapts Observe to the dnsserver.OnQuery signature.
func (db *DB) Hook() func(q dnswire.Question) {
	return func(q dnswire.Question) { db.Observe(q.Name) }
}

// Seed loads a historical cumulative count (the years of data a real
// passive-DNS operator has that a fresh simulation does not).
func (db *DB) Seed(name string, count int64) {
	db.mu.Lock()
	db.counts[normalize(name)] += count
	db.mu.Unlock()
}

// Count returns the cumulative resolutions of name.
func (db *DB) Count(name string) int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.counts[normalize(name)]
}

// Len reports how many distinct names have been observed.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.counts)
}

// Entry is one row of a Top-N report.
type Entry struct {
	Name  string
	Count int64
}

// Top returns the n names with the most resolutions, descending;
// ties break lexicographically for determinism.
func (db *DB) Top(n int) []Entry {
	db.mu.RLock()
	entries := make([]Entry, 0, len(db.counts))
	for name, c := range db.counts {
		entries = append(entries, Entry{name, c})
	}
	db.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Name < entries[j].Name
	})
	if n < len(entries) {
		entries = entries[:n]
	}
	return entries
}

// TopFiltered returns the top n names among those keep() accepts —
// Table 11 filters to detected homographs.
func (db *DB) TopFiltered(n int, keep func(name string) bool) []Entry {
	db.mu.RLock()
	entries := make([]Entry, 0, len(db.counts))
	for name, c := range db.counts {
		if keep(name) {
			entries = append(entries, Entry{name, c})
		}
	}
	db.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Name < entries[j].Name
	})
	if n < len(entries) {
		entries = entries[:n]
	}
	return entries
}

// Driver replays a query load with a Zipf popularity profile over a
// domain population, calling lookup for each query — typically a
// dnsclient.Client.Query wrapper pointed at the simulated
// authoritative server.
type Driver struct {
	// Domains is the population, most popular first.
	Domains []string
	// Queries is the total number of lookups to issue.
	Queries int
	// Skew is the Zipf exponent. Zero means 1.1.
	Skew float64
	// Workers bounds concurrency. Zero means 8.
	Workers int
}

// Run issues the load. Lookup errors are counted, not fatal: a cache
// fleet tolerates individual failures.
func (d *Driver) Run(seed uint64, lookup func(name string) error) (sent, failed int) {
	if len(d.Domains) == 0 || d.Queries <= 0 {
		return 0, 0
	}
	skew := d.Skew
	if skew == 0 {
		skew = 1.1
	}
	workers := d.Workers
	if workers <= 0 {
		workers = 8
	}
	// Pre-draw the query sequence deterministically, then fan out.
	rng := stats.NewRNG(seed)
	zipf := stats.NewZipf(rng, len(d.Domains), skew)
	names := make([]string, d.Queries)
	for i := range names {
		names[i] = d.Domains[zipf.Rank()-1]
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	sem := make(chan struct{}, workers)
	for _, name := range names {
		wg.Add(1)
		sem <- struct{}{}
		go func(name string) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := lookup(name); err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}(name)
	}
	wg.Wait()
	return len(names), failed
}
