package pdns

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestObserveAndCount(t *testing.T) {
	db := NewDB()
	db.Observe("a.com.")
	db.Observe("A.COM")
	db.Observe("b.com")
	if got := db.Count("a.com"); got != 2 {
		t.Errorf("Count(a.com) = %d", got)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestSeedAccumulates(t *testing.T) {
	db := NewDB()
	db.Seed("big.com", 1000)
	db.Observe("big.com")
	if got := db.Count("big.com"); got != 1001 {
		t.Errorf("Count = %d", got)
	}
}

func TestTopOrderingAndTies(t *testing.T) {
	db := NewDB()
	db.Seed("small.com", 1)
	db.Seed("big.com", 100)
	db.Seed("mid-b.com", 50)
	db.Seed("mid-a.com", 50)
	top := db.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top = %v", top)
	}
	if top[0].Name != "big.com" {
		t.Errorf("top[0] = %+v", top[0])
	}
	// Ties break lexicographically.
	if top[1].Name != "mid-a.com" || top[2].Name != "mid-b.com" {
		t.Errorf("tie order = %v", top[1:])
	}
	if got := db.Top(100); len(got) != 4 {
		t.Errorf("Top(100) = %d entries", len(got))
	}
}

func TestTopFiltered(t *testing.T) {
	db := NewDB()
	db.Seed("xn--evil.com", 500)
	db.Seed("benign.com", 900)
	top := db.TopFiltered(5, func(name string) bool {
		return strings.HasPrefix(name, "xn--")
	})
	if len(top) != 1 || top[0].Name != "xn--evil.com" {
		t.Errorf("filtered = %v", top)
	}
}

func TestConcurrentObserve(t *testing.T) {
	db := NewDB()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				db.Observe("hot.com")
			}
		}()
	}
	wg.Wait()
	if got := db.Count("hot.com"); got != 2000 {
		t.Errorf("Count = %d, want 2000", got)
	}
}

func TestDriverRun(t *testing.T) {
	db := NewDB()
	d := &Driver{
		Domains: []string{"pop.com", "mid.com", "rare.com"},
		Queries: 500,
		Workers: 4,
	}
	sent, failed := d.Run(42, func(name string) error {
		db.Observe(name)
		return nil
	})
	if sent != 500 || failed != 0 {
		t.Fatalf("sent=%d failed=%d", sent, failed)
	}
	// Zipf skew: the top domain must dominate.
	if db.Count("pop.com") <= db.Count("rare.com") {
		t.Errorf("zipf shape broken: pop=%d rare=%d", db.Count("pop.com"), db.Count("rare.com"))
	}
}

func TestDriverCountsFailures(t *testing.T) {
	d := &Driver{Domains: []string{"x.com"}, Queries: 10}
	_, failed := d.Run(1, func(string) error { return errors.New("boom") })
	if failed != 10 {
		t.Errorf("failed = %d", failed)
	}
}

func TestDriverDegenerate(t *testing.T) {
	d := &Driver{}
	if sent, _ := d.Run(1, func(string) error { return nil }); sent != 0 {
		t.Errorf("empty driver sent %d", sent)
	}
}

func TestDriverDeterministicSequence(t *testing.T) {
	run := func() map[string]int64 {
		db := NewDB()
		d := &Driver{Domains: []string{"a.com", "b.com", "c.com"}, Queries: 200, Workers: 1}
		d.Run(7, func(name string) error {
			db.Observe(name)
			return nil
		})
		return map[string]int64{
			"a": db.Count("a.com"), "b": db.Count("b.com"), "c": db.Count("c.com"),
		}
	}
	a, b := run(), run()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("nondeterministic counts: %v vs %v", a, b)
		}
	}
}
