package study

import (
	"math"
	"sync"
	"testing"

	"repro/internal/fontgen"
	"repro/internal/hexfont"
	"repro/internal/ucd"
)

var (
	fontOnce sync.Once
	fontVal  *hexfont.Font
)

func testFont(t testing.TB) *hexfont.Font {
	t.Helper()
	fontOnce.Do(func() {
		fontVal = fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
	})
	return fontVal
}

func TestExpectedScoreMonotone(t *testing.T) {
	m := DefaultModel()
	prev := 6.0
	for d := 0.0; d <= 10; d++ {
		s := m.ExpectedScore(d)
		if s >= prev {
			t.Fatalf("ExpectedScore not strictly decreasing at Δ=%v: %v >= %v", d, s, prev)
		}
		if s < 1 || s > 5 {
			t.Fatalf("ExpectedScore(%v) = %v out of Likert range", d, s)
		}
		prev = s
	}
}

func TestExpectedScoreMatchesPaperFit(t *testing.T) {
	m := DefaultModel()
	// The paper reports mean 3.57 at Δ=4 and 2.57 at Δ=5. The analytic
	// curve sits near those before response noise/rounding; the
	// empirical fit is asserted in TestRunThresholdExperiment.
	if got := m.ExpectedScore(4); math.Abs(got-3.57) > 0.35 {
		t.Errorf("ExpectedScore(4) = %.2f, want ≈3.57", got)
	}
	if got := m.ExpectedScore(5); math.Abs(got-2.57) > 0.35 {
		t.Errorf("ExpectedScore(5) = %.2f, want ≈2.57", got)
	}
}

func ladderPairs(t *testing.T) []Pair {
	t.Helper()
	font := testFont(t)
	ladder := Ladder(font, ucd.IsPValid, 8, 20, 7)
	var pairs []Pair
	for d := 0; d <= 8; d++ {
		pairs = append(pairs, ladder[d]...)
	}
	return pairs
}

func TestLadderShape(t *testing.T) {
	font := testFont(t)
	ladder := Ladder(font, ucd.IsPValid, 8, 20, 7)
	for d, pairs := range ladder {
		if len(pairs) > 20 {
			t.Errorf("Δ=%d has %d pairs, cap is 20", d, len(pairs))
		}
		for _, p := range pairs {
			if p.Delta != d {
				t.Errorf("pair %c/%c filed under Δ=%d but has Δ=%d", p.A, p.B, d, p.Delta)
			}
			if got := DeltaOf(font, p.A, p.B); got != p.Delta {
				t.Errorf("pair %c/%c: recomputed Δ=%d, recorded %d", p.A, p.B, got, p.Delta)
			}
		}
	}
	if len(ladder[0]) == 0 {
		t.Error("no Δ=0 twins found — font twin spec broken")
	}
}

func TestDummiesAreDistinct(t *testing.T) {
	font := testFont(t)
	dummies := Dummies(font, 30, 7)
	if len(dummies) != 30 {
		t.Fatalf("dummies = %d", len(dummies))
	}
	for _, p := range dummies {
		if p.Kind != KindRandom || p.A == p.B {
			t.Errorf("bad dummy %+v", p)
		}
		if p.Delta >= 0 && p.Delta <= 8 {
			t.Errorf("dummy %c/%c too similar (Δ=%d)", p.A, p.B, p.Delta)
		}
	}
}

func TestRunThresholdExperiment(t *testing.T) {
	font := testFont(t)
	pairs := ladderPairs(t)
	pairs = append(pairs, Dummies(font, 30, 7)...)
	out := Run(pairs, Config{Seed: 7, Participants: 14})
	if out.Recruited != 14 {
		t.Errorf("recruited = %d", out.Recruited)
	}
	if len(out.Effective) == 0 {
		t.Fatal("QC removed everyone")
	}
	if err := out.Validate(); err != nil {
		t.Error(err)
	}
	byDelta := out.SummaryByDelta()
	// Paper: Δ=4 perceived as confusing (mean ≈ 3.5, median 4);
	// Δ=5 perceived as distinct (mean ≈ 2.6, median ≤ 3).
	if s := byDelta[4]; s.Mean < 3.0 || s.Median < 3.5 {
		t.Errorf("Δ=4 summary off: %v", s)
	}
	if s := byDelta[5]; s.Mean > 3.2 {
		t.Errorf("Δ=5 summary off: %v", s)
	}
	if s := byDelta[0]; s.Mean < 4.3 {
		t.Errorf("Δ=0 should be near-unanimous confusing: %v", s)
	}
}

func TestQCRemovesCarelessParticipants(t *testing.T) {
	font := testFont(t)
	pairs := append(ladderPairs(t), Dummies(font, 30, 7)...)
	// With every participant careless, nearly all should be removed:
	// 30 dummy pairs make a random 4/5 almost certain.
	out := Run(pairs, Config{Seed: 3, Participants: 10, CarelessRate: 0.999})
	if out.Removed < 9 {
		t.Errorf("removed %d of 10 careless participants", out.Removed)
	}
}

func TestRunDeterministic(t *testing.T) {
	font := testFont(t)
	pairs := append(ladderPairs(t), Dummies(font, 30, 7)...)
	a := Run(pairs, Config{Seed: 9})
	b := Run(pairs, Config{Seed: 9})
	if len(a.Effective) != len(b.Effective) || a.Removed != b.Removed {
		t.Fatal("run not deterministic")
	}
	for i := range a.Effective {
		if a.Effective[i] != b.Effective[i] {
			t.Fatal("responses differ between identical runs")
		}
	}
}

func TestComparisonExperimentShape(t *testing.T) {
	font := testFont(t)
	ladder := Ladder(font, ucd.IsPValid, 4, 20, 7)
	var sim []Pair
	for d := 0; d <= 4; d++ {
		sim = append(sim, ladder[d]...)
	}
	// UC pairs: reuse sim twins for the confusable part plus
	// semantically-close-but-visually-distinct pairs (Figure 11).
	var uc []Pair
	for i, p := range sim {
		if i%3 == 0 {
			uc = append(uc, Pair{A: p.A, B: p.B, Delta: p.Delta, Kind: KindUC})
		}
	}
	for i := 0; i < 8; i++ {
		uc = append(uc, Pair{A: 'u', B: rune('A' + i), Delta: -1, Kind: KindUC})
	}
	dummies := Dummies(font, 30, 7)

	out := Run(append(append(sim, uc...), dummies...), Config{Seed: 11, Participants: 30})
	byKind := out.SummaryByKind()
	simS, ucS, randS := byKind[KindSimChar], byKind[KindUC], byKind[KindRandom]
	if !(simS.Mean > ucS.Mean && ucS.Mean > randS.Mean) {
		t.Errorf("Figure 10 ordering broken: sim %.2f, uc %.2f, random %.2f",
			simS.Mean, ucS.Mean, randS.Mean)
	}
	if simS.Mean <= 4.0 {
		t.Errorf("SimChar mean %.2f, paper reports > 4", simS.Mean)
	}
	if randS.Median > 1.5 {
		t.Errorf("Random median %.1f, paper reports ≈1", randS.Median)
	}
	if simS.Median < 4 || ucS.Median < 3.5 {
		t.Errorf("medians: sim %.1f uc %.1f", simS.Median, ucS.Median)
	}
}

func TestScoresWhere(t *testing.T) {
	pairs := []Pair{{A: 'a', B: 'b', Delta: 0, Kind: KindSimChar}}
	out := Run(pairs, Config{Seed: 1, Participants: 5, CarelessRate: 0.0001})
	xs := out.ScoresWhere(func(p Pair) bool { return p.Kind == KindSimChar })
	if len(xs) == 0 {
		t.Fatal("no scores collected")
	}
	for _, x := range xs {
		if x < 1 || x > 5 {
			t.Errorf("score %v out of range", x)
		}
	}
}
