// Package study simulates the paper's Amazon Mechanical Turk human
// evaluation (Section 4.1): participants judge pairs of characters on
// a five-level "confusability" Likert scale, with dummy attention
// checks and the paper's quality-control filtering executed for real.
//
// The perceptual model is a logistic curve in the glyph pixel distance
// Δ, fitted to the paper's reported aggregates (Δ=4 → mean 3.57,
// median 4; Δ=5 → mean 2.57, median 2), plus per-participant
// reliability and response noise. Everything downstream of the model —
// task design, dummy screening, participant removal, effective-response
// accounting, boxplot statistics — is the paper's procedure, not a
// curve fit.
package study

import (
	"fmt"
	"math"

	"repro/internal/bitmap"
	"repro/internal/hexfont"
	"repro/internal/stats"
)

// PairKind labels where a judged pair came from.
type PairKind uint8

// Pair sources.
const (
	KindSimChar PairKind = iota
	KindUC
	KindRandom // dummy / baseline: two random distinct characters
)

// String names the kind.
func (k PairKind) String() string {
	switch k {
	case KindSimChar:
		return "SimChar"
	case KindUC:
		return "UC"
	case KindRandom:
		return "Random"
	}
	return "unknown"
}

// Pair is one assignment's character pair.
type Pair struct {
	A, B  rune
	Delta int // glyph pixel distance; <0 means unknown (no glyph)
	Kind  PairKind
}

// Participant models one crowd worker.
type Participant struct {
	ID int
	// Reliability is the probability a response follows the
	// perceptual model rather than being uniform noise.
	Reliability float64
	// Careless participants answer near-uniformly; the QC stage is
	// supposed to catch and remove them.
	Careless bool
}

// Response is one Likert judgement.
type Response struct {
	Participant int
	Pair        Pair
	Score       int // 1 (very distinct) .. 5 (very confusing)
}

// Model holds the perceptual parameters. Zero value means Default.
type Model struct {
	// Logistic midpoint and slope in Δ.
	Midpoint float64
	Slope    float64
	// Noise is the stddev of the Gaussian jitter added to the model
	// score before rounding.
	Noise float64
	// UnknownDelta substitutes for pairs without glyph coverage.
	UnknownDelta float64
}

// DefaultModel returns parameters fitted to the paper's Figure 9
// aggregates.
func DefaultModel() Model {
	return Model{Midpoint: 4.60, Slope: 1.50, Noise: 0.85, UnknownDelta: 9}
}

func (m Model) fill() Model {
	d := DefaultModel()
	if m.Midpoint == 0 {
		m.Midpoint = d.Midpoint
	}
	if m.Slope == 0 {
		m.Slope = d.Slope
	}
	if m.Noise == 0 {
		m.Noise = d.Noise
	}
	if m.UnknownDelta == 0 {
		m.UnknownDelta = d.UnknownDelta
	}
	return m
}

// ExpectedScore is the model's mean Likert score for a pair at
// distance delta.
func (m Model) ExpectedScore(delta float64) float64 {
	p := 1 / (1 + math.Exp(m.Slope*(delta-m.Midpoint)))
	return 1 + 4*p
}

// respond draws one participant's Likert answer for a pair.
func (m Model) respond(rng *stats.RNG, p Participant, pair Pair) int {
	if p.Careless || rng.Float64() > p.Reliability {
		return 1 + rng.Intn(5)
	}
	delta := float64(pair.Delta)
	if pair.Delta < 0 {
		delta = m.UnknownDelta
	}
	score := m.ExpectedScore(delta) + rng.Normal(0, m.Noise)
	s := int(math.Round(score))
	if s < 1 {
		s = 1
	}
	if s > 5 {
		s = 5
	}
	return s
}

// Config parameterises a study run.
type Config struct {
	Seed         uint64
	Participants int
	// CarelessRate is the fraction of careless workers recruited
	// before QC removal. Default 0.1.
	CarelessRate float64
	Model        Model
}

func (c Config) fill() Config {
	if c.Participants == 0 {
		c.Participants = 10
	}
	if c.CarelessRate == 0 {
		c.CarelessRate = 0.1
	}
	c.Model = c.Model.fill()
	return c
}

// recruit builds the participant pool.
func recruit(cfg Config, rng *stats.RNG) []Participant {
	ps := make([]Participant, cfg.Participants)
	for i := range ps {
		ps[i] = Participant{
			ID:          i,
			Reliability: 0.85 + 0.15*rng.Float64(),
			Careless:    rng.Float64() < cfg.CarelessRate,
		}
	}
	return ps
}

// Run executes a study: every participant judges every pair, then QC
// filtering removes unreliable participants exactly as the paper does:
// anyone rating a dummy (random) pair 4 or 5, and anyone rating a Δ=0
// SimChar pair 1 or 2, loses all their responses.
func Run(pairs []Pair, cfg Config) *Outcome {
	cfg = cfg.fill()
	rng := stats.NewRNG(cfg.Seed*0x9E3779B9 + 0x7F4A7C15)
	participants := recruit(cfg, rng)

	all := make([]Response, 0, len(pairs)*len(participants))
	for _, p := range participants {
		for _, pair := range pairs {
			all = append(all, Response{
				Participant: p.ID,
				Pair:        pair,
				Score:       cfg.Model.respond(rng, p, pair),
			})
		}
	}

	// QC pass.
	removed := make(map[int]bool)
	for _, r := range all {
		switch {
		case r.Pair.Kind == KindRandom && r.Score >= 4:
			removed[r.Participant] = true
		case r.Pair.Kind == KindSimChar && r.Pair.Delta == 0 && r.Score <= 2:
			removed[r.Participant] = true
		}
	}
	var kept []Response
	for _, r := range all {
		if !removed[r.Participant] {
			kept = append(kept, r)
		}
	}
	return &Outcome{
		AllResponses: all,
		Effective:    kept,
		Recruited:    len(participants),
		Removed:      len(removed),
	}
}

// Outcome is a completed study with QC applied.
type Outcome struct {
	AllResponses []Response
	Effective    []Response
	Recruited    int
	Removed      int
}

// ScoresWhere collects effective scores matching the predicate.
func (o *Outcome) ScoresWhere(keep func(Pair) bool) []float64 {
	var xs []float64
	for _, r := range o.Effective {
		if keep(r.Pair) {
			xs = append(xs, float64(r.Score))
		}
	}
	return xs
}

// SummaryByDelta aggregates effective non-dummy responses per Δ —
// Figure 9's panels.
func (o *Outcome) SummaryByDelta() map[int]stats.Summary {
	out := make(map[int]stats.Summary)
	byDelta := make(map[int][]float64)
	for _, r := range o.Effective {
		if r.Pair.Kind == KindRandom {
			continue
		}
		byDelta[r.Pair.Delta] = append(byDelta[r.Pair.Delta], float64(r.Score))
	}
	for d, xs := range byDelta {
		out[d] = stats.Summarize(xs)
	}
	return out
}

// SummaryByKind aggregates effective responses per pair source —
// Figure 10's three boxes.
func (o *Outcome) SummaryByKind() map[PairKind]stats.Summary {
	out := make(map[PairKind]stats.Summary)
	byKind := make(map[PairKind][]float64)
	for _, r := range o.Effective {
		byKind[r.Pair.Kind] = append(byKind[r.Pair.Kind], float64(r.Score))
	}
	for k, xs := range byKind {
		out[k] = stats.Summarize(xs)
	}
	return out
}

// DeltaOf computes the glyph distance of two characters under font,
// returning -1 when either glyph is missing.
func DeltaOf(font *hexfont.Font, a, b rune) int {
	ga, okA := font.Glyph(a)
	gb, okB := font.Glyph(b)
	if !okA || !okB {
		return -1
	}
	return bitmap.Delta(ga.Rasterize(), gb.Rasterize())
}

// Ladder samples, for each Δ in [0, maxDelta], up to perDelta pairs
// (latin letter, candidate) whose glyph distance is exactly Δ —
// Experiment 1's stimulus set. Candidates are drawn from the font's
// coverage intersected with permitted (pass nil to allow all).
func Ladder(font *hexfont.Font, permitted func(rune) bool, maxDelta, perDelta int, seed uint64) map[int][]Pair {
	rng := stats.NewRNG(seed ^ 0x1adde5)
	byDelta := make(map[int][]Pair)
	runes := font.Runes()
	for letter := 'a'; letter <= 'z'; letter++ {
		gl, ok := font.Glyph(letter)
		if !ok {
			continue
		}
		img := gl.Rasterize()
		for _, r := range runes {
			if r == letter || (permitted != nil && !permitted(r)) {
				continue
			}
			gr, _ := font.Glyph(r)
			d := bitmap.DeltaCapped(img, gr.Rasterize(), maxDelta+1)
			if d > maxDelta {
				continue
			}
			byDelta[d] = append(byDelta[d], Pair{A: letter, B: r, Delta: d, Kind: KindSimChar})
		}
	}
	for d := 0; d <= maxDelta; d++ {
		pairs := byDelta[d]
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		if len(pairs) > perDelta {
			byDelta[d] = pairs[:perDelta]
		}
	}
	return byDelta
}

// Dummies builds n random distinct-letter pairs with their true glyph
// distances — the attention checks and the Figure 10 Random baseline.
func Dummies(font *hexfont.Font, n int, seed uint64) []Pair {
	rng := stats.NewRNG(seed ^ 0xd0d0)
	out := make([]Pair, 0, n)
	for len(out) < n {
		a := rune('a' + rng.Intn(26))
		b := rune('a' + rng.Intn(26))
		if a == b {
			continue
		}
		d := DeltaOf(font, a, b)
		if d >= 0 && d <= 8 {
			continue // too similar to be a fair attention check
		}
		out = append(out, Pair{A: a, B: b, Delta: d, Kind: KindRandom})
	}
	return out
}

// Validate sanity-checks an outcome against the paper's qualitative
// shape; the experiments harness calls this to fail loudly when a
// regression flattens the curve.
func (o *Outcome) Validate() error {
	byDelta := o.SummaryByDelta()
	s4, ok4 := byDelta[4]
	s5, ok5 := byDelta[5]
	if ok4 && ok5 && s4.Mean <= s5.Mean {
		return fmt.Errorf("study: mean at Δ=4 (%.2f) not above Δ=5 (%.2f)", s4.Mean, s5.Mean)
	}
	return nil
}
