package zonefile

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dnswire"
)

const sampleZone = `
$ORIGIN com.
$TTL 3600
; delegation records for the com zone
@	IN SOA a.gtld-servers.net. nstld.verisign-grs.com. (
		2024052900 ; serial
		1800       ; refresh
		900        ; retry
		604800     ; expire
		86400 )    ; minimum
@	IN NS	a.gtld-servers.net.
example	IN NS	ns1.example.com.
	IN NS	ns2.example.com.
ns1.example	IN A	192.0.2.10
ns1.example	IN AAAA	2001:db8::10
mail.example	300 IN MX	10 mx.example.com.
example	IN TXT	"v=spf1 -all" "second string"
www.example	IN CNAME example
xn--fcbook-dya IN NS ns1.example.com.
`

func parseSample(t *testing.T) *Zone {
	t.Helper()
	z, err := Parse(strings.NewReader(sampleZone), "")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return z
}

func TestParseBasics(t *testing.T) {
	z := parseSample(t)
	if z.Origin != "com." {
		t.Errorf("origin = %q", z.Origin)
	}
	if z.TTL != 3600 {
		t.Errorf("default TTL = %d", z.TTL)
	}
	if len(z.Records) != 10 {
		t.Fatalf("got %d records, want 10", len(z.Records))
	}
}

func TestParseSOAMultiline(t *testing.T) {
	z := parseSample(t)
	soa, ok := z.Records[0].Data.(dnswire.SOA)
	if !ok {
		t.Fatalf("record 0 is %T", z.Records[0].Data)
	}
	if soa.Serial != 2024052900 || soa.Refresh != 1800 || soa.Minimum != 86400 {
		t.Errorf("SOA = %+v", soa)
	}
	if z.Records[0].Name != "com." {
		t.Errorf("SOA owner = %q", z.Records[0].Name)
	}
}

func TestOwnerInheritance(t *testing.T) {
	z := parseSample(t)
	// Record 3 is the blank-owner NS line following example's first NS.
	if z.Records[3].Name != "example.com." {
		t.Errorf("inherited owner = %q", z.Records[3].Name)
	}
	if ns := z.Records[3].Data.(dnswire.NS); ns.Host != "ns2.example.com." {
		t.Errorf("inherited NS host = %q", ns.Host)
	}
}

func TestRelativeNamesResolved(t *testing.T) {
	z := parseSample(t)
	var cname dnswire.CNAME
	found := false
	for _, rec := range z.Records {
		if c, ok := rec.Data.(dnswire.CNAME); ok {
			cname = c
			found = true
			if rec.Name != "www.example.com." {
				t.Errorf("CNAME owner = %q", rec.Name)
			}
		}
	}
	if !found || cname.Target != "example.com." {
		t.Errorf("CNAME = %+v found=%t", cname, found)
	}
}

func TestPerRecordTTL(t *testing.T) {
	z := parseSample(t)
	for _, rec := range z.Records {
		if _, ok := rec.Data.(dnswire.MX); ok {
			if rec.TTL != 300 {
				t.Errorf("MX TTL = %d, want 300", rec.TTL)
			}
			return
		}
	}
	t.Fatal("no MX record found")
}

func TestTXTStrings(t *testing.T) {
	z := parseSample(t)
	for _, rec := range z.Records {
		if txt, ok := rec.Data.(dnswire.TXT); ok {
			if len(txt.Strings) != 2 || txt.Strings[0] != "v=spf1 -all" {
				t.Errorf("TXT = %+v", txt.Strings)
			}
			return
		}
	}
	t.Fatal("no TXT record found")
}

func TestDomainNames(t *testing.T) {
	z := parseSample(t)
	names := z.DomainNames()
	// example.com (two NS lines, deduped) + the IDN; the zone apex NS
	// is excluded.
	if len(names) != 2 {
		t.Fatalf("DomainNames = %v", names)
	}
	if names[0] != "example.com." || names[1] != "xn--fcbook-dya.com." {
		t.Errorf("DomainNames = %v", names)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	z := parseSample(t)
	var buf bytes.Buffer
	if err := z.Write(&buf); err != nil {
		t.Fatal(err)
	}
	z2, err := Parse(&buf, "")
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(z2.Records) != len(z.Records) {
		t.Fatalf("round trip: %d -> %d records", len(z.Records), len(z2.Records))
	}
	for i := range z.Records {
		a, b := z.Records[i], z2.Records[i]
		if a.Name != b.Name || a.TTL != b.TTL || a.Data.Type() != b.Data.Type() ||
			a.Data.String() != b.Data.String() {
			t.Errorf("record %d: %v != %v", i, a, b)
		}
	}
}

func TestTTLUnits(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
	}{
		{"30", 30}, {"30s", 30}, {"2m", 120}, {"1h", 3600}, {"2d", 172800}, {"1w", 604800},
	}
	for _, c := range cases {
		got, err := parseTTL(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseTTL(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	if _, err := parseTTL("abc"); err == nil {
		t.Error("parseTTL(abc) succeeded")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, zone string
	}{
		{"unbalanced open", "$ORIGIN com.\nfoo IN SOA a. b. ( 1 2 3"},
		{"unbalanced close", "$ORIGIN com.\nfoo IN NS a. )"},
		{"relative without origin", "foo IN NS bar"},
		{"bad A", "$ORIGIN com.\nfoo IN A notanip"},
		{"v6 in A", "$ORIGIN com.\nfoo IN A 2001:db8::1"},
		{"bad MX pref", "$ORIGIN com.\nfoo IN MX ten mail"},
		{"unknown directive", "$BOGUS x"},
		{"include unsupported", "$INCLUDE other.zone"},
		{"no type", "$ORIGIN com.\nfoo IN 300"},
		{"inherit first", "$ORIGIN com.\n  IN NS a."},
		{"unterminated quote", "$ORIGIN com.\nfoo IN TXT \"oops"},
		{"origin relative", "$ORIGIN com"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.zone), ""); err == nil {
			t.Errorf("%s: Parse succeeded, want error", c.name)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse(strings.NewReader("$ORIGIN com.\ngood IN NS a.\nbad IN A nope\n"), "")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	zone := "; leading comment\n\n$ORIGIN com.\n\nfoo IN NS ns.foo ; trailing\n"
	z, err := Parse(strings.NewReader(zone), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Records) != 1 {
		t.Fatalf("records = %v", z.Records)
	}
	if z.Records[0].Name != "foo.com." {
		t.Errorf("owner = %q", z.Records[0].Name)
	}
}

func TestAtOrigin(t *testing.T) {
	z, err := Parse(strings.NewReader("$ORIGIN net.\n@ IN NS ns1\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	if z.Records[0].Name != "net." {
		t.Errorf("@ resolved to %q", z.Records[0].Name)
	}
	if ns := z.Records[0].Data.(dnswire.NS); ns.Host != "ns1.net." {
		t.Errorf("relative NS host = %q", ns.Host)
	}
}

func TestExternalOriginParameter(t *testing.T) {
	z, err := Parse(strings.NewReader("foo IN NS ns.foo\n"), "org")
	if err != nil {
		t.Fatal(err)
	}
	if z.Records[0].Name != "foo.org." {
		t.Errorf("owner = %q", z.Records[0].Name)
	}
}

func TestLargeZoneScales(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("$ORIGIN com.\n$TTL 300\n")
	for i := 0; i < 5000; i++ {
		sb.WriteString("domain")
		sb.WriteString(strings.Repeat("x", i%5))
		sb.WriteByte('a' + byte(i%26))
		sb.WriteString(" IN NS ns1.registrar.net.\n")
	}
	z, err := Parse(strings.NewReader(sb.String()), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Records) != 5000 {
		t.Errorf("records = %d", len(z.Records))
	}
}

// TestTokenizeQuotedEscapes pins the tokenize fast path introduced for
// zone-scale parsing: unescaped quoted strings take the copy-free route,
// escaped ones still unescape exactly as before.
func TestTokenizeQuotedEscapes(t *testing.T) {
	cases := []struct {
		line   string
		tokens []string
	}{
		{`foo TXT "plain"`, []string{"foo", "TXT", "\"plain"}},
		{`foo TXT ""`, []string{"foo", "TXT", "\""}},
		{`foo TXT "with \"inner\" quotes"`, []string{"foo", "TXT", "\"with \"inner\" quotes"}},
		{`foo TXT "back\\slash"`, []string{"foo", "TXT", "\"back\\slash"}},
		{`foo TXT "a" "b"`, []string{"foo", "TXT", "\"a", "\"b"}},
		{`foo TXT "semi;colon" ; trailing comment`, []string{"foo", "TXT", "\"semi;colon"}},
		{`foo TXT "paren()"`, []string{"foo", "TXT", "\"paren()"}},
	}
	for _, c := range cases {
		tokens, opened, closed, err := tokenize(c.line)
		if err != nil {
			t.Errorf("tokenize(%q): %v", c.line, err)
			continue
		}
		if opened != 0 || closed != 0 {
			t.Errorf("tokenize(%q) counted parens %d/%d inside quotes", c.line, opened, closed)
		}
		if len(tokens) != len(c.tokens) {
			t.Errorf("tokenize(%q) = %q, want %q", c.line, tokens, c.tokens)
			continue
		}
		for i := range tokens {
			if tokens[i] != c.tokens[i] {
				t.Errorf("tokenize(%q)[%d] = %q, want %q", c.line, i, tokens[i], c.tokens[i])
			}
		}
	}
	if _, _, _, err := tokenize(`foo TXT "unterminated`); err == nil {
		t.Error("unterminated quote accepted")
	}
	if _, _, _, err := tokenize(`foo TXT "trailing backslash\`); err == nil {
		t.Error("unterminated escaped quote accepted")
	}
}
