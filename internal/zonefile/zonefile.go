// Package zonefile reads and writes RFC 1035 master files — the format
// registries such as Verisign publish their TLD zones in and the input
// to Step 1 of the ShamFinder pipeline. It supports $ORIGIN and $TTL
// directives, relative and absolute owner names, owner-name inheritance
// (blank owner columns), parenthesised multi-line records (as used by
// SOA), semicolon comments, and quoted TXT strings.
package zonefile

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/dnswire"
)

// Zone is a parsed master file: an ordered list of records plus the
// origin they were loaded under.
type Zone struct {
	Origin  string // canonical, e.g. "com."
	TTL     uint32 // default TTL from $TTL, 0 if unset
	Records []dnswire.Record
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("zonefile: line %d: %s", e.Line, e.Msg)
}

// Parse reads a master file. origin seeds $ORIGIN handling and may be
// overridden by a $ORIGIN directive in the file; pass "" if the file is
// self-contained.
func Parse(r io.Reader, origin string) (*Zone, error) {
	z := &Zone{Origin: dnswire.CanonicalName(origin)}
	if origin == "" {
		z.Origin = ""
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)

	lineNo := 0
	lastOwner := ""
	var pending []string // tokens accumulated across a parenthesised group
	pendingStart := 0
	depth := 0

	flush := func(tokens []string, line int) error {
		if len(tokens) == 0 {
			return nil
		}
		rec, owner, err := z.parseRecord(tokens, lastOwner)
		if err != nil {
			return &ParseError{Line: line, Msg: err.Error()}
		}
		lastOwner = owner
		z.Records = append(z.Records, rec)
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		tokens, opened, closed, err := tokenize(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
		// Directives are only recognised at the start of a record.
		if depth == 0 && len(tokens) > 0 && strings.HasPrefix(tokens[0], "$") {
			if err := z.directive(tokens); err != nil {
				return nil, &ParseError{Line: lineNo, Msg: err.Error()}
			}
			continue
		}
		// A line whose first character is whitespace inherits the
		// previous owner; tokenize records that via a leading marker.
		if depth == 0 {
			pending = tokens
			pendingStart = lineNo
		} else {
			// Leading whitespace on a continuation line inside a '('
			// group is just formatting, not owner inheritance.
			if len(tokens) > 0 && tokens[0] == ownerInherit {
				tokens = tokens[1:]
			}
			pending = append(pending, tokens...)
		}
		depth += opened - closed
		if depth < 0 {
			return nil, &ParseError{Line: lineNo, Msg: "unbalanced ')'"}
		}
		if depth == 0 {
			if err := flush(pending, pendingStart); err != nil {
				return nil, err
			}
			pending = nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("zonefile: %w", err)
	}
	if depth != 0 {
		return nil, &ParseError{Line: lineNo, Msg: "unterminated '(' group"}
	}
	return z, nil
}

// ownerInherit is the token emitted when a line starts with whitespace,
// meaning "reuse the previous owner name".
const ownerInherit = "\x00inherit"

// tokenize splits one line into tokens, handling comments, quoted
// strings and parentheses. It reports how many unquoted '(' and ')'
// appeared so the caller can track multi-line groups.
func tokenize(line string) (tokens []string, opened, closed int, err error) {
	i := 0
	n := len(line)
	if n > 0 && (line[0] == ' ' || line[0] == '\t') {
		tokens = append(tokens, ownerInherit)
	}
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == ';':
			return tokens, opened, closed, nil
		case c == '(':
			opened++
			i++
		case c == ')':
			closed++
			i++
		case c == '"':
			// Fast path: scan to the closing quote; only strings that
			// actually contain a backslash escape pay for a Builder.
			j := i + 1
			for j < n && line[j] != '"' && line[j] != '\\' {
				j++
			}
			if j < n && line[j] == '"' {
				tokens = append(tokens, "\""+line[i+1:j])
				i = j + 1
				continue
			}
			var sb strings.Builder
			sb.WriteByte('"')
			sb.WriteString(line[i+1 : j])
			for j < n && line[j] != '"' {
				if line[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(line[j])
				j++
			}
			if j >= n {
				return nil, 0, 0, fmt.Errorf("unterminated quoted string")
			}
			tokens = append(tokens, sb.String())
			i = j + 1
		default:
			j := i
			for j < n && !isDelim(line[j]) {
				j++
			}
			tokens = append(tokens, line[i:j])
			i = j
		}
	}
	return tokens, opened, closed, nil
}

// isDelim reports whether c ends a bare token. A byte switch compiles to
// a branch table, replacing the per-byte strings.ContainsRune scan that
// dominated tokenize on long records.
func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', ';', '(', ')', '"':
		return true
	}
	return false
}

func (z *Zone) directive(tokens []string) error {
	switch strings.ToUpper(tokens[0]) {
	case "$ORIGIN":
		if len(tokens) != 2 {
			return fmt.Errorf("$ORIGIN wants 1 argument, got %d", len(tokens)-1)
		}
		if !strings.HasSuffix(tokens[1], ".") {
			return fmt.Errorf("$ORIGIN %q must be absolute", tokens[1])
		}
		z.Origin = dnswire.CanonicalName(tokens[1])
		return nil
	case "$TTL":
		if len(tokens) != 2 {
			return fmt.Errorf("$TTL wants 1 argument, got %d", len(tokens)-1)
		}
		ttl, err := parseTTL(tokens[1])
		if err != nil {
			return err
		}
		z.TTL = ttl
		return nil
	case "$INCLUDE":
		return fmt.Errorf("$INCLUDE is not supported")
	default:
		return fmt.Errorf("unknown directive %s", tokens[0])
	}
}

// parseTTL accepts plain seconds or the BIND unit suffixes s/m/h/d/w.
func parseTTL(s string) (uint32, error) {
	mult := uint32(1)
	last := s[len(s)-1]
	switch last {
	case 's', 'S':
		s = s[:len(s)-1]
	case 'm', 'M':
		mult, s = 60, s[:len(s)-1]
	case 'h', 'H':
		mult, s = 3600, s[:len(s)-1]
	case 'd', 'D':
		mult, s = 86400, s[:len(s)-1]
	case 'w', 'W':
		mult, s = 604800, s[:len(s)-1]
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad TTL %q", s)
	}
	return uint32(v) * mult, nil
}

// absolute resolves a possibly-relative name against the zone origin.
// "@" means the origin itself.
func (z *Zone) absolute(name string) (string, error) {
	if name == "@" {
		if z.Origin == "" {
			return "", fmt.Errorf("@ used with no $ORIGIN")
		}
		return z.Origin, nil
	}
	if strings.HasSuffix(name, ".") {
		return dnswire.CanonicalName(name), nil
	}
	if z.Origin == "" {
		return "", fmt.Errorf("relative name %q with no $ORIGIN", name)
	}
	return dnswire.CanonicalName(name + "." + z.Origin), nil
}

// parseRecord interprets the token list of one logical record line.
// Layout: [owner] [TTL] [class] type rdata...; TTL and class may appear
// in either order (RFC 1035 allows both).
func (z *Zone) parseRecord(tokens []string, lastOwner string) (dnswire.Record, string, error) {
	var rec dnswire.Record
	if len(tokens) == 0 {
		return rec, lastOwner, fmt.Errorf("empty record")
	}
	owner := ""
	if tokens[0] == ownerInherit {
		if lastOwner == "" {
			return rec, "", fmt.Errorf("owner inheritance with no previous owner")
		}
		owner = lastOwner
		tokens = tokens[1:]
	} else {
		var err error
		owner, err = z.absolute(tokens[0])
		if err != nil {
			return rec, "", err
		}
		tokens = tokens[1:]
	}
	rec.Name = owner
	rec.Class = dnswire.ClassIN
	rec.TTL = z.TTL

	// Consume optional TTL and class in any order before the type.
	var typ dnswire.Type
	for {
		if len(tokens) == 0 {
			return rec, owner, fmt.Errorf("record for %s has no type", owner)
		}
		tok := tokens[0]
		if t, ok := dnswire.TypeByName(tok); ok {
			typ = t
			tokens = tokens[1:]
			break
		}
		if strings.EqualFold(tok, "IN") {
			rec.Class = dnswire.ClassIN
			tokens = tokens[1:]
			continue
		}
		if ttl, err := parseTTL(tok); err == nil {
			rec.TTL = ttl
			tokens = tokens[1:]
			continue
		}
		return rec, owner, fmt.Errorf("unrecognised token %q (not TTL, class or type)", tok)
	}

	data, err := z.parseRData(typ, tokens)
	if err != nil {
		return rec, owner, fmt.Errorf("%s %s: %w", owner, typ, err)
	}
	rec.Data = data
	return rec, owner, nil
}

func (z *Zone) parseRData(typ dnswire.Type, tok []string) (dnswire.RData, error) {
	need := func(n int) error {
		if len(tok) != n {
			return fmt.Errorf("want %d rdata fields, got %d", n, len(tok))
		}
		return nil
	}
	switch typ {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(tok[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad IPv4 address %q", tok[0])
		}
		return dnswire.A{Addr: addr}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(tok[0])
		if err != nil || !addr.Is6() || addr.Is4() {
			return nil, fmt.Errorf("bad IPv6 address %q", tok[0])
		}
		return dnswire.AAAA{Addr: addr}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		host, err := z.absolute(tok[0])
		if err != nil {
			return nil, err
		}
		return dnswire.NS{Host: host}, nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := z.absolute(tok[0])
		if err != nil {
			return nil, err
		}
		return dnswire.CNAME{Target: target}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(tok[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", tok[0])
		}
		host, err := z.absolute(tok[1])
		if err != nil {
			return nil, err
		}
		return dnswire.MX{Preference: uint16(pref), Host: host}, nil
	case dnswire.TypeTXT:
		if len(tok) == 0 {
			return nil, fmt.Errorf("TXT needs at least one string")
		}
		ss := make([]string, len(tok))
		for i, s := range tok {
			ss[i] = strings.TrimPrefix(s, "\"")
		}
		return dnswire.TXT{Strings: ss}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		mname, err := z.absolute(tok[0])
		if err != nil {
			return nil, err
		}
		rname, err := z.absolute(tok[1])
		if err != nil {
			return nil, err
		}
		var vals [5]uint32
		for i, s := range tok[2:] {
			v, err := parseTTL(s)
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", s)
			}
			vals[i] = v
		}
		return dnswire.SOA{
			MName: mname, RName: rname,
			Serial: vals[0], Refresh: vals[1], Retry: vals[2],
			Expire: vals[3], Minimum: vals[4],
		}, nil
	default:
		return nil, fmt.Errorf("unsupported record type %s", typ)
	}
}

// Write emits the zone in master-file form, with $ORIGIN/$TTL header
// lines and names relativised against the origin for compactness.
func (z *Zone) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if z.Origin != "" {
		fmt.Fprintf(bw, "$ORIGIN %s\n", z.Origin)
	}
	if z.TTL != 0 {
		fmt.Fprintf(bw, "$TTL %d\n", z.TTL)
	}
	for _, rec := range z.Records {
		owner := z.relativize(rec.Name)
		fmt.Fprintf(bw, "%s\t%d\t%s\t%s\t%s\n",
			owner, rec.TTL, rec.Class, rec.Data.Type(), z.presentRData(rec.Data))
	}
	return bw.Flush()
}

func (z *Zone) relativize(name string) string {
	name = dnswire.CanonicalName(name)
	if z.Origin == "" {
		return name
	}
	if name == z.Origin {
		return "@"
	}
	if strings.HasSuffix(name, "."+z.Origin) {
		return strings.TrimSuffix(name, "."+z.Origin)
	}
	return name
}

func (z *Zone) presentRData(d dnswire.RData) string {
	switch r := d.(type) {
	case dnswire.NS:
		return z.relativize(r.Host)
	case dnswire.CNAME:
		return z.relativize(r.Target)
	case dnswire.MX:
		return fmt.Sprintf("%d %s", r.Preference, z.relativize(r.Host))
	default:
		return d.String()
	}
}

// DomainNames returns the unique owner names of NS records in the
// zone, which for a TLD zone is exactly the set of registered
// (delegated) domains — the paper's Step 1 output.
func (z *Zone) DomainNames() []string {
	seen := make(map[string]bool)
	var names []string
	for _, rec := range z.Records {
		if rec.Data.Type() != dnswire.TypeNS {
			continue
		}
		if rec.Name == z.Origin {
			continue // the TLD's own NS set, not a registration
		}
		if !seen[rec.Name] {
			seen[rec.Name] = true
			names = append(names, rec.Name)
		}
	}
	return names
}
