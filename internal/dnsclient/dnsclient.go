// Package dnsclient implements a transport-pluggable stub resolver
// for probing the simulated (or any) authoritative DNS server at
// survey scale — the paper's Section 6.1 NS/A/MX sweep over every
// detected homograph. Four transports share one probing engine, and
// all of them multiplex queries over persistent pooled connections
// instead of paying a dial (and, encrypted, a handshake) per query:
//
//   - udp: a small pool of long-lived connected sockets shared by all
//     workers, responses demultiplexed to waiters by query ID, with
//     the standard TCP retry on truncated answers;
//   - tcp: a keep-alive pool speaking RFC 7766-style pipelining with
//     out-of-order response matching;
//   - dot: DNS over TLS (RFC 7858) on the pooled stream path, with a
//     shared session cache so resumed handshakes amortize to nothing;
//   - doh: DNS wire format over HTTP/2 POST (RFC 8484) with one
//     multiplexed http.Client per server.
//
// The batch prober fans a domain list across a bounded worker pool and
// issues each domain's three questions concurrently over the shared
// connections.
package dnsclient

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
	"repro/internal/resilience"
)

// Client errors.
var (
	ErrTimeout      = errors.New("dnsclient: query timed out")
	ErrIDMismatch   = errors.New("dnsclient: response ID mismatch")
	ErrServerFailed = errors.New("dnsclient: SERVFAIL")
	ErrRefused      = errors.New("dnsclient: REFUSED")
	ErrClosed       = errors.New("dnsclient: client closed")
)

// Transport selects the wire protocol a Client probes over.
type Transport string

// Supported transports.
const (
	TransportUDP Transport = "udp"
	TransportTCP Transport = "tcp"
	TransportDoT Transport = "dot"
	TransportDoH Transport = "doh"
)

// Transports lists every supported transport, in the order the docs
// and benchmarks present them.
func Transports() []Transport {
	return []Transport{TransportUDP, TransportTCP, TransportDoT, TransportDoH}
}

// ParseTransport maps a CLI or API spelling onto a Transport. The
// empty string means udp, the classic default.
func ParseTransport(s string) (Transport, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "udp":
		return TransportUDP, nil
	case "tcp":
		return TransportTCP, nil
	case "dot", "tls", "dns-over-tls":
		return TransportDoT, nil
	case "doh", "https", "dns-over-https":
		return TransportDoH, nil
	}
	return "", fmt.Errorf("dnsclient: unknown transport %q (want udp, tcp, dot or doh)", s)
}

// Client is a stub resolver pointed at one server address. Its pools
// are created lazily on first use; call Close when done to tear down
// the pooled connections and their reader goroutines.
type Client struct {
	// Server is the "host:port" of the DNS server. For doh it is the
	// HTTPS endpoint: queries POST to https://Server/dns-query.
	Server string
	// Transport selects the wire protocol: udp (the default), tcp,
	// dot or doh.
	Transport Transport
	// Timeout bounds each attempt. Zero means 2 seconds.
	Timeout time.Duration
	// Retries is the number of additional attempts after the first
	// fails (New sets 2; the zero value means none).
	Retries int
	// Backoff spaces the retransmits. A retry fires because the
	// server (or path) dropped the first datagram — resending in the
	// same microsecond just lands in the same congested queue, so
	// attempts back off exponentially with equal jitter: randomized to
	// decorrelate a prober fleet, but never below half the deterministic
	// delay, so attempts are provably spaced. The zero value means
	// 100ms base, 2s cap.
	Backoff resilience.Backoff
	// PoolSize is how many persistent connections each transport's
	// pool keeps to the server. Zero means 4.
	PoolSize int
	// TLSConfig overrides the dot/doh TLS client configuration. Nil
	// accepts any certificate — the prober talks to survey targets and
	// simulators, not parties it can pre-trust, the same stance the
	// web-survey crawler takes. DoT connections share a session cache
	// unless the override carries its own.
	TLSConfig *tls.Config

	nextID atomic.Uint32

	mu            sync.Mutex
	closed        bool
	udp, tcp, dot *pool
	doh           *http.Client
	dohURL        string
	dohU          *url.URL
	sessions      tls.ClientSessionCache
}

// New returns a client for the given server address.
func New(server string) *Client {
	c := &Client{Server: server, Timeout: 2 * time.Second, Retries: 2, Backoff: defaultBackoff()}
	c.nextID.Store(1)
	return c
}

func defaultBackoff() resilience.Backoff {
	return resilience.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: resilience.JitterEqual}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout == 0 {
		return 2 * time.Second
	}
	return c.Timeout
}

func (c *Client) poolSize() int {
	if c.PoolSize <= 0 {
		return 4
	}
	return c.PoolSize
}

func (c *Client) transport() (Transport, error) {
	switch c.Transport {
	case "", TransportUDP:
		return TransportUDP, nil
	case TransportTCP, TransportDoT, TransportDoH:
		return c.Transport, nil
	}
	return "", fmt.Errorf("dnsclient: unknown transport %q (want udp, tcp, dot or doh)", c.Transport)
}

// Close tears down every pooled connection and waits for their reader
// goroutines to exit; in-flight queries fail cleanly with a
// connection-failed error. The client is unusable afterwards. Safe to
// call more than once.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	pools := []*pool{c.udp, c.tcp, c.dot}
	doh := c.doh
	c.mu.Unlock()
	for _, p := range pools {
		if p != nil {
			p.close()
		}
	}
	if doh != nil {
		doh.CloseIdleConnections()
	}
	return nil
}

// Query sends one question and returns the server's response message.
// QueryContext is the cancellable form.
func (c *Client) Query(name string, typ dnswire.Type) (*dnswire.Message, error) {
	return c.QueryContext(context.Background(), name, typ)
}

// QueryContext sends one question over the configured transport and
// returns the server's response message. Cancelling ctx is honored
// between and during attempts — a cancelled query stops
// retransmitting, stops backing off, and releases its in-flight slot
// immediately. On UDP a truncated response triggers the standard TCP
// retry over the pooled stream path.
func (c *Client) QueryContext(ctx context.Context, name string, typ dnswire.Type) (*dnswire.Message, error) {
	tr, err := c.transport()
	if err != nil {
		return nil, err
	}
	// Pack once with a placeholder ID and the RFC 1035 §4.2.2 length
	// prefix; each attempt patches its freshly allocated ID into bytes
	// 2–3 and stream transports send the whole frame.
	query := dnswire.NewQuery(0, name, typ)
	framed, err := query.Pack(make([]byte, 2, 128))
	if err != nil {
		return nil, fmt.Errorf("dnsclient: packing query for %q: %w", name, err)
	}
	wireLen := len(framed) - 2
	framed[0], framed[1] = byte(wireLen>>8), byte(wireLen)

	backoff := c.Backoff
	if backoff.Base == 0 {
		backoff = defaultBackoff()
	}
	attempts := c.Retries + 1
	var lastErr error = ErrTimeout
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if err := backoff.Sleep(ctx, i-1); err != nil {
				return nil, err
			}
		}
		resp, err := c.exchange(ctx, tr, framed)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		if tr == TransportUDP && resp.Header.Truncated {
			resp, err = c.exchange(ctx, TransportTCP, framed)
			if err != nil {
				return nil, fmt.Errorf("dnsclient: %q %s tcp fallback: %w", name, typ, err)
			}
		}
		return checkRCode(resp)
	}
	return nil, fmt.Errorf("dnsclient: %q %s after %d attempts: %w", name, typ, attempts, lastErr)
}

// exchange performs one attempt on one transport: pick a pooled
// connection, allocate a collision-free ID, patch it into the packed
// query, write, and wait for the demultiplexed response, the
// per-attempt timeout, or cancellation.
func (c *Client) exchange(ctx context.Context, tr Transport, framed []byte) (*dnswire.Message, error) {
	if tr == TransportDoH {
		return c.dohExchange(ctx, framed[2:])
	}
	p, err := c.poolFor(tr)
	if err != nil {
		return nil, err
	}
	pc, err := p.conn()
	if err != nil {
		return nil, err
	}
	id, ch, err := pc.register(&c.nextID)
	if err != nil {
		return nil, err
	}
	framed[2], framed[3] = byte(id>>8), byte(id)
	out := framed
	if !pc.framed {
		out = framed[2:]
	}
	if err := pc.write(out); err != nil {
		pc.deregister(id)
		pc.fail(err)
		return nil, fmt.Errorf("dnsclient: %s write: %w", tr, err)
	}
	timer := time.NewTimer(c.timeout())
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, pc.lastErr()
		}
		return resp, nil
	case <-timer.C:
		pc.deregister(id)
		return nil, ErrTimeout
	case <-ctx.Done():
		pc.deregister(id)
		return nil, ctx.Err()
	}
}

// poolFor lazily builds the pool for a connection-oriented transport.
func (c *Client) poolFor(tr Transport) (*pool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	switch tr {
	case TransportUDP:
		if c.udp == nil {
			c.udp = c.newPool("udp", nil)
		}
		return c.udp, nil
	case TransportTCP:
		if c.tcp == nil {
			c.tcp = c.newPool("tcp", nil)
		}
		return c.tcp, nil
	case TransportDoT:
		if c.dot == nil {
			c.dot = c.newPool("tcp", c.tlsConfigLocked(true))
		}
		return c.dot, nil
	}
	return nil, fmt.Errorf("dnsclient: no pool for transport %q", tr)
}

func (c *Client) newPool(network string, tlsCfg *tls.Config) *pool {
	server, timeout := c.Server, c.timeout()
	dial := func() (net.Conn, error) {
		nc, err := net.DialTimeout(network, server, timeout)
		if err != nil {
			return nil, fmt.Errorf("dnsclient: dial %s: %w", network, err)
		}
		if tlsCfg == nil {
			return nc, nil
		}
		tc := tls.Client(nc, tlsCfg)
		tc.SetDeadline(time.Now().Add(timeout))
		if err := tc.Handshake(); err != nil {
			nc.Close()
			return nil, fmt.Errorf("dnsclient: dot handshake: %w", err)
		}
		tc.SetDeadline(time.Time{})
		return tc, nil
	}
	return &pool{dial: dial, framed: network == "tcp", size: c.poolSize(), wtimeout: timeout}
}

// tlsConfigLocked builds the TLS client config for dot or doh. DoT
// advertises its RFC 7858 ALPN token and shares one session cache
// across the pool, so re-dials resume instead of re-handshaking.
func (c *Client) tlsConfigLocked(dot bool) *tls.Config {
	cfg := c.TLSConfig
	if cfg == nil {
		cfg = &tls.Config{InsecureSkipVerify: true}
	}
	cfg = cfg.Clone()
	if dot {
		cfg.NextProtos = []string{"dot"}
		if cfg.ClientSessionCache == nil {
			if c.sessions == nil {
				c.sessions = tls.NewLRUClientSessionCache(16)
			}
			cfg.ClientSessionCache = c.sessions
		}
	}
	return cfg
}

func checkRCode(resp *dnswire.Message) (*dnswire.Message, error) {
	switch resp.Header.RCode {
	case dnswire.RCodeServerFailure:
		return resp, ErrServerFailed
	case dnswire.RCodeRefused:
		return resp, ErrRefused
	default:
		return resp, nil
	}
}

// Has reports whether name has at least one record of the given type.
// NXDOMAIN and NODATA both report false; transport errors propagate.
func (c *Client) Has(name string, typ dnswire.Type) (bool, error) {
	resp, err := c.Query(name, typ)
	if err != nil {
		return false, err
	}
	return hasAnswer(resp, typ), nil
}

func hasAnswer(resp *dnswire.Message, typ dnswire.Type) bool {
	for _, rr := range resp.Answers {
		if rr.Data.Type() == typ {
			return true
		}
	}
	return false
}

// ProbeResult is the outcome of probing one domain in a batch.
type ProbeResult struct {
	Name  string
	HasNS bool
	HasA  bool
	HasMX bool
	// NSHosts are the delegation targets (trailing root dot stripped)
	// from the NS answer — the input to parked-by-delegation
	// classification, captured here so downstream stages need no second
	// NS round trip.
	NSHosts []string
	Err     error
}

// Probe checks NS, A and MX presence for one domain — the single-
// domain unit ProbeBatch fans out, exported for pipelines that manage
// their own concurrency (internal/triage wraps it per worker, so a
// zone-scale survey pays no per-domain pool setup).
func (c *Client) Probe(domain string) ProbeResult {
	return c.ProbeContext(context.Background(), domain)
}

// ProbeContext probes one domain's NS, A and MX concurrently — three
// questions pipelined over the pooled connections instead of three
// sequential dial-query-close round trips. The result keeps the
// staged semantics of the sequential prober: a domain without NS
// records reports no A/MX (the paper's §6.1 funnel), and errors
// surface with NS → A → MX precedence.
func (c *Client) ProbeContext(ctx context.Context, domain string) ProbeResult {
	res := ProbeResult{Name: domain}
	var (
		wg                    sync.WaitGroup
		nsResp, aResp, mxResp *dnswire.Message
		nsErr, aErr, mxErr    error
	)
	wg.Add(3)
	go func() { defer wg.Done(); nsResp, nsErr = c.QueryContext(ctx, domain, dnswire.TypeNS) }()
	go func() { defer wg.Done(); aResp, aErr = c.QueryContext(ctx, domain, dnswire.TypeA) }()
	go func() { defer wg.Done(); mxResp, mxErr = c.QueryContext(ctx, domain, dnswire.TypeMX) }()
	wg.Wait()
	if nsErr != nil {
		res.Err = nsErr
		return res
	}
	for _, rr := range nsResp.Answers {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			res.NSHosts = append(res.NSHosts, strings.TrimSuffix(ns.Host, "."))
		}
	}
	res.HasNS = len(res.NSHosts) > 0
	if !res.HasNS {
		return res
	}
	if aErr != nil {
		res.Err = aErr
		return res
	}
	res.HasA = hasAnswer(aResp, dnswire.TypeA)
	if mxErr != nil {
		res.Err = mxErr
		return res
	}
	res.HasMX = hasAnswer(mxResp, dnswire.TypeMX)
	return res
}

// ProbeBatch checks NS, A and MX presence for every domain,
// concurrently with at most workers in flight. Results preserve input
// order. A domain without NS records reports no A/MX, matching the
// paper's staged analysis (2,294 with NS → 1,909 with A).
func (c *Client) ProbeBatch(domains []string, workers int) []ProbeResult {
	if workers <= 0 {
		workers = 16
	}
	results := make([]ProbeResult, len(domains))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, d := range domains {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = c.Probe(d)
		}(i, d)
	}
	wg.Wait()
	return results
}
