// Package dnsclient implements a stub resolver for probing the
// simulated (or any) authoritative DNS server: UDP queries with
// per-attempt timeouts and retries, automatic TCP fallback when a
// response arrives truncated, and a concurrent batch prober that fans a
// domain list across a bounded worker pool — the shape of the paper's
// Section 6.1 NS/A sweep over 3,280 detected homographs.
package dnsclient

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
	"repro/internal/resilience"
)

// Client errors.
var (
	ErrTimeout      = errors.New("dnsclient: query timed out")
	ErrIDMismatch   = errors.New("dnsclient: response ID mismatch")
	ErrServerFailed = errors.New("dnsclient: SERVFAIL")
	ErrRefused      = errors.New("dnsclient: REFUSED")
)

// Client is a stub resolver pointed at one server address.
type Client struct {
	// Server is the "host:port" of the DNS server.
	Server string
	// Timeout bounds each attempt. Zero means 2 seconds.
	Timeout time.Duration
	// Retries is the number of additional UDP attempts after the
	// first times out. Zero means 2.
	Retries int
	// Backoff spaces the UDP retransmits. A retry fires because the
	// server (or path) dropped the first datagram — resending in the
	// same microsecond just lands in the same congested queue, so
	// attempts back off exponentially with equal jitter: randomized to
	// decorrelate a prober fleet, but never below half the deterministic
	// delay, so attempts are provably spaced. The zero value means
	// 100ms base, 2s cap.
	Backoff resilience.Backoff

	nextID atomic.Uint32
}

// New returns a client for the given server address.
func New(server string) *Client {
	c := &Client{Server: server, Timeout: 2 * time.Second, Retries: 2, Backoff: defaultBackoff()}
	c.nextID.Store(1)
	return c
}

func defaultBackoff() resilience.Backoff {
	return resilience.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: resilience.JitterEqual}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout == 0 {
		return 2 * time.Second
	}
	return c.Timeout
}

// Query sends one question and returns the server's response message.
// UDP is tried first (with retries); a TC response triggers a TCP
// retry, per standard resolver behaviour.
func (c *Client) Query(name string, typ dnswire.Type) (*dnswire.Message, error) {
	id := uint16(c.nextID.Add(1))
	query := dnswire.NewQuery(id, name, typ)
	wire, err := query.Pack(nil)
	if err != nil {
		return nil, fmt.Errorf("dnsclient: packing query for %q: %w", name, err)
	}

	backoff := c.Backoff
	if backoff.Base == 0 {
		backoff = defaultBackoff()
	}
	attempts := c.Retries + 1
	var lastErr error = ErrTimeout
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff.Delay(i - 1))
		}
		resp, err := c.queryUDP(wire, id)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.Truncated {
			return c.queryTCP(wire, id)
		}
		return checkRCode(resp)
	}
	return nil, fmt.Errorf("dnsclient: %q %s after %d attempts: %w", name, typ, attempts, lastErr)
}

func checkRCode(resp *dnswire.Message) (*dnswire.Message, error) {
	switch resp.Header.RCode {
	case dnswire.RCodeServerFailure:
		return resp, ErrServerFailed
	case dnswire.RCodeRefused:
		return resp, ErrRefused
	default:
		return resp, nil
	}
}

func (c *Client) queryUDP(wire []byte, id uint16) (*dnswire.Message, error) {
	conn, err := net.Dial("udp", c.Server)
	if err != nil {
		return nil, fmt.Errorf("dnsclient: dial udp: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.timeout()))
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("dnsclient: udp write: %w", err)
	}
	buf := make([]byte, 64*1024)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, ErrTimeout
			}
			return nil, fmt.Errorf("dnsclient: udp read: %w", err)
		}
		var resp dnswire.Message
		if err := resp.Unpack(buf[:n]); err != nil {
			continue // garbage datagram; keep waiting for ours
		}
		if resp.Header.ID != id {
			continue // stale or spoofed; RFC 5452 says ignore
		}
		return &resp, nil
	}
}

func (c *Client) queryTCP(wire []byte, id uint16) (*dnswire.Message, error) {
	conn, err := net.DialTimeout("tcp", c.Server, c.timeout())
	if err != nil {
		return nil, fmt.Errorf("dnsclient: dial tcp: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.timeout()))
	framed := make([]byte, 2+len(wire))
	framed[0] = byte(len(wire) >> 8)
	framed[1] = byte(len(wire))
	copy(framed[2:], wire)
	if _, err := conn.Write(framed); err != nil {
		return nil, fmt.Errorf("dnsclient: tcp write: %w", err)
	}
	lenBuf := make([]byte, 2)
	if _, err := io.ReadFull(conn, lenBuf); err != nil {
		return nil, fmt.Errorf("dnsclient: tcp read length: %w", err)
	}
	msg := make([]byte, int(lenBuf[0])<<8|int(lenBuf[1]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		return nil, fmt.Errorf("dnsclient: tcp read body: %w", err)
	}
	var resp dnswire.Message
	if err := resp.Unpack(msg); err != nil {
		return nil, fmt.Errorf("dnsclient: tcp response: %w", err)
	}
	if resp.Header.ID != id {
		return nil, ErrIDMismatch
	}
	return checkRCode(&resp)
}

// Has reports whether name has at least one record of the given type.
// NXDOMAIN and NODATA both report false; transport errors propagate.
func (c *Client) Has(name string, typ dnswire.Type) (bool, error) {
	resp, err := c.Query(name, typ)
	if err != nil {
		return false, err
	}
	for _, rr := range resp.Answers {
		if rr.Data.Type() == typ {
			return true, nil
		}
	}
	return false, nil
}

// ProbeResult is the outcome of probing one domain in a batch.
type ProbeResult struct {
	Name  string
	HasNS bool
	HasA  bool
	HasMX bool
	// NSHosts are the delegation targets (trailing root dot stripped)
	// from the NS answer — the input to parked-by-delegation
	// classification, captured here so downstream stages need no second
	// NS round trip.
	NSHosts []string
	Err     error
}

// Probe checks NS, A and MX presence for one domain — the single-
// domain unit ProbeBatch fans out, exported for pipelines that manage
// their own concurrency (internal/triage wraps it per worker, so a
// zone-scale survey pays no per-domain pool setup).
func (c *Client) Probe(domain string) ProbeResult {
	return c.probeOne(domain)
}

// ProbeBatch checks NS, A and MX presence for every domain,
// concurrently with at most workers in flight. Results preserve input
// order. A domain without NS records skips the A/MX lookups, matching
// the paper's staged analysis (2,294 with NS → 1,909 with A).
func (c *Client) ProbeBatch(domains []string, workers int) []ProbeResult {
	if workers <= 0 {
		workers = 16
	}
	results := make([]ProbeResult, len(domains))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, d := range domains {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = c.probeOne(d)
		}(i, d)
	}
	wg.Wait()
	return results
}

func (c *Client) probeOne(domain string) ProbeResult {
	res := ProbeResult{Name: domain}
	resp, err := c.Query(domain, dnswire.TypeNS)
	if err != nil {
		res.Err = err
		return res
	}
	for _, rr := range resp.Answers {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			res.NSHosts = append(res.NSHosts, strings.TrimSuffix(ns.Host, "."))
		}
	}
	res.HasNS = len(res.NSHosts) > 0
	if !res.HasNS {
		return res
	}
	if res.HasA, err = c.Has(domain, dnswire.TypeA); err != nil {
		res.Err = err
		return res
	}
	if res.HasMX, err = c.Has(domain, dnswire.TypeMX); err != nil {
		res.Err = err
	}
	return res
}
