package dnsclient

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dnsserver"
	"repro/internal/dnswire"
)

// enableEncrypted turns on the server's DoT and DoH listeners and
// returns their addresses.
func enableEncrypted(t *testing.T, srv *dnsserver.Server) (dot, doh string) {
	t.Helper()
	if err := srv.EnableDoT("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableDoH("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return srv.DoTAddr(), srv.DoHAddr()
}

func clientForTransport(t *testing.T, tr Transport, udpAddr, dotAddr, dohAddr string) *Client {
	t.Helper()
	addr := udpAddr
	switch tr {
	case TransportDoT:
		addr = dotAddr
	case TransportDoH:
		addr = dohAddr
	}
	c := New(addr)
	c.Transport = tr
	t.Cleanup(func() { c.Close() })
	return c
}

// waitForGoroutineSettle polls until the goroutine count returns to
// (near) the pre-test baseline — the drained-pool assertion every
// transport's teardown shares.
func waitForGoroutineSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestTransportsProbeIdentically is the end-to-end cross-transport
// contract: the same population probed over udp, tcp, dot and doh
// yields byte-identical results.
func TestTransportsProbeIdentically(t *testing.T) {
	srv, domains := startStoreServer(t, 40)
	dotAddr, dohAddr := enableEncrypted(t, srv)
	var baseline []ProbeResult
	for _, tr := range Transports() {
		c := clientForTransport(t, tr, srv.Addr(), dotAddr, dohAddr)
		results := c.ProbeBatch(domains, 8)
		for _, res := range results {
			if res.Err != nil {
				t.Fatalf("%s: %s: %v", tr, res.Name, res.Err)
			}
		}
		if baseline == nil {
			baseline = results
		} else if !reflect.DeepEqual(results, baseline) {
			t.Fatalf("%s results differ from udp baseline", tr)
		}
	}
}

// TestPoolRedialAcrossServerRestart proves the tentpole's failure
// story on every transport: queries in flight across a server restart
// fail cleanly (no hang, no leak), and the pools re-dial so the next
// batch succeeds without constructing a new client.
func TestPoolRedialAcrossServerRestart(t *testing.T) {
	for _, tr := range Transports() {
		t.Run(string(tr), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			srv, domains := startStoreServer(t, 30)
			dotAddr, dohAddr := enableEncrypted(t, srv)
			udpAddr := srv.Addr()
			c := clientForTransport(t, tr, udpAddr, dotAddr, dohAddr)
			c.Timeout = 500 * time.Millisecond
			c.Retries = 1

			first := c.ProbeBatch(domains, 8)
			for _, res := range first {
				if res.Err != nil {
					t.Fatalf("pre-restart %s: %v", res.Name, res.Err)
				}
			}

			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			// With the server down, a probe must fail within its retry
			// budget — the pooled connections are dead, not wedged.
			start := time.Now()
			if res := c.Probe(domains[0]); res.Err == nil {
				t.Fatal("probe succeeded against a closed server")
			}
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("downed-server probe took %v — in-flight queries hung", elapsed)
			}

			// Restart on the very same addresses; the client keeps its
			// pools and must recover by pruning dead connections and
			// re-dialing.
			if err := srv.ListenAndServe(udpAddr); err != nil {
				t.Fatal(err)
			}
			if err := srv.EnableDoT(dotAddr); err != nil {
				t.Fatal(err)
			}
			if err := srv.EnableDoH(dohAddr); err != nil {
				t.Fatal(err)
			}
			second := c.ProbeBatch(domains, 8)
			for _, res := range second {
				if res.Err != nil {
					t.Fatalf("post-restart %s: %v", res.Name, res.Err)
				}
			}
			if !reflect.DeepEqual(first, second) {
				t.Fatal("post-restart results differ from pre-restart")
			}

			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			srv.Close()
			waitForGoroutineSettle(t, baseline)
		})
	}
}

// TestQueryIDAllocationSkipsInFlight pins the collision-avoidance
// satellite: with the atomic counter forced to wrap mid-burst, every
// concurrently in-flight query on one socket must still hold a
// distinct ID.
func TestQueryIDAllocationSkipsInFlight(t *testing.T) {
	// Blackhole: queries are read and dropped, so registrations pile up.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			if _, _, err := conn.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	c := New(conn.LocalAddr().String())
	c.Timeout = 2 * time.Second
	c.Retries = 0
	c.PoolSize = 1 // every query lands on the same socket
	c.nextID.Store(65530)
	defer c.Close()

	const inflight = 40
	var wg sync.WaitGroup
	wg.Add(inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			defer wg.Done()
			c.QueryContext(context.Background(), "xn--wrap.com.", dnswire.TypeA)
		}()
	}
	// Wait until every query has registered on the socket.
	deadline := time.Now().Add(time.Second)
	for {
		c.mu.Lock()
		p := c.udp
		c.mu.Unlock()
		n := 0
		if p != nil {
			p.mu.Lock()
			if len(p.conns) == 1 {
				pc := p.conns[0]
				pc.mu.Lock()
				n = len(pc.inflight)
				pc.mu.Unlock()
			}
			p.mu.Unlock()
		}
		if n == inflight {
			break // the map keying proves the IDs are pairwise distinct
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d queries in flight on the socket", n, inflight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Close fails the in-flight queries cleanly; the waiters return.
	c.Close()
	wg.Wait()
}

// TestStreamOutOfOrderResponses pins RFC 7766 pipelining: a server
// that answers two pipelined TCP queries in reverse order must have
// both responses demultiplexed back to the right callers.
func TestStreamOutOfOrderResponses(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var queries []*dnswire.Message
		buf := make([]byte, 64*1024)
		for len(queries) < 2 {
			n, err := readFrame(conn, buf)
			if err != nil {
				return
			}
			q := new(dnswire.Message)
			if err := q.Unpack(buf[:n]); err != nil {
				return
			}
			queries = append(queries, q)
		}
		// Answer in reverse arrival order.
		for i := len(queries) - 1; i >= 0; i-- {
			resp := dnswire.NewResponse(queries[i], dnswire.RCodeSuccess)
			resp.Answers = append(resp.Answers, dnswire.Record{
				Name: queries[i].Questions[0].Name, Class: dnswire.ClassIN, TTL: 60,
				Data: dnswire.TXT{Strings: []string{queries[i].Questions[0].Name}},
			})
			// Pack from offset 0 (compression pointers are absolute) and
			// frame separately.
			wire, err := resp.Pack(nil)
			if err != nil {
				return
			}
			frame := append([]byte{byte(len(wire) >> 8), byte(len(wire))}, wire...)
			if _, err := conn.Write(frame); err != nil {
				return
			}
		}
	}()

	c := New(ln.Addr().String())
	c.Transport = TransportTCP
	c.PoolSize = 1 // both queries pipeline on one connection
	c.Retries = 0
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	names := []string{"first.com.", "second.com."}
	// The test server reads both queries before answering either, so
	// both must be in flight concurrently.
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			resp, err := c.Query(name, dnswire.TypeTXT)
			if err != nil {
				errs[i] = err
				return
			}
			if len(resp.Questions) != 1 || resp.Questions[0].Name != name {
				errs[i] = fmt.Errorf("response for %q answered question %v", name, resp.Questions)
			}
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d (%s): %v", i, names[i], err)
		}
	}
}

// TestDoTSessionResumption proves the handshake amortization claim: a
// replacement connection dialed after the first one dies resumes the
// TLS session from the shared cache instead of re-handshaking from
// scratch.
func TestDoTSessionResumption(t *testing.T) {
	srv, domains := startStoreServer(t, 4)
	dotAddr, dohAddr := enableEncrypted(t, srv)
	c := clientForTransport(t, TransportDoT, srv.Addr(), dotAddr, dohAddr)
	c.PoolSize = 1

	// First query establishes the connection; reading its response also
	// drains the server's post-handshake session tickets into the cache.
	if res := c.Probe(domains[1]); res.Err != nil {
		t.Fatal(res.Err)
	}
	c.mu.Lock()
	p := c.dot
	c.mu.Unlock()
	p.mu.Lock()
	if len(p.conns) != 1 {
		p.mu.Unlock()
		t.Fatalf("pool holds %d connections, want 1", len(p.conns))
	}
	first := p.conns[0]
	p.mu.Unlock()
	if first.nc.(*tls.Conn).ConnectionState().DidResume {
		t.Fatal("very first connection claims resumption")
	}

	// Kill the connection; the next probe must re-dial — and resume.
	first.fail(io.ErrUnexpectedEOF)
	if res := c.Probe(domains[1]); res.Err != nil {
		t.Fatal(res.Err)
	}
	p.mu.Lock()
	second := p.conns[0]
	p.mu.Unlock()
	if second == first {
		t.Fatal("dead connection was not replaced")
	}
	if !second.nc.(*tls.Conn).ConnectionState().DidResume {
		t.Error("re-dialed DoT connection did not resume the TLS session")
	}
}

// TestDoHQueryIDMismatch pins the satellite's ErrIDMismatch contract:
// on the one transport with no demux table (the HTTP exchange itself
// rules out reordering), a response carrying the wrong ID is a
// protocol error — reported as ErrIDMismatch, never waited past.
func TestDoHQueryIDMismatch(t *testing.T) {
	ts := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			return
		}
		q := new(dnswire.Message)
		if err := q.Unpack(body); err != nil {
			return
		}
		resp := dnswire.NewResponse(q, dnswire.RCodeSuccess)
		resp.Header.ID ^= 0x5a5a // corrupt the echoed ID
		out, _ := resp.Pack(nil)
		w.Header().Set("Content-Type", "application/dns-message")
		w.Write(out)
	}))
	defer ts.Close()

	c := New(strings.TrimPrefix(ts.URL, "https://"))
	c.Transport = TransportDoH
	c.Retries = 0
	defer c.Close()
	_, err := c.Query("mismatch.com.", dnswire.TypeA)
	if !errors.Is(err, ErrIDMismatch) {
		t.Fatalf("got %v, want ErrIDMismatch", err)
	}
}
