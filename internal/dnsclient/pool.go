package dnsclient

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
)

// maxMsgSize bounds one DNS message on any transport; 64 KiB is the
// stream-framing maximum.
const maxMsgSize = 64 * 1024

// readBufs is the shared read-buffer arena. Each pooled connection's
// reader checks one 64 KiB buffer out for its whole lifetime instead
// of the seed client's fresh allocation per query, which was ~98%
// wasted on typical answers. Message.Unpack copies everything it
// keeps, so a buffer is safe to reuse the moment a message is decoded.
var readBufs = sync.Pool{New: func() any { b := make([]byte, maxMsgSize); return &b }}

// pool is a fixed-size set of persistent connections to one server,
// shared by every worker of a batch probe. Connections are dialed
// lazily, handed out round-robin, and pruned-then-replaced on the use
// after they die, so a server restart mid-batch costs one failed
// attempt per in-flight query and a re-dial — not a wedged pool.
type pool struct {
	dial     func() (net.Conn, error)
	framed   bool // RFC 1035 §4.2.2 two-octet length framing (tcp/dot)
	size     int
	wtimeout time.Duration

	mu     sync.Mutex
	conns  []*poolConn
	rr     uint
	closed bool
}

// conn returns a live pooled connection, dialing a replacement when
// the pool is below size. The dial happens under the pool lock:
// concurrent workers serialize here only while a dial or TLS
// handshake is actually in progress, which happens a handful of times
// per pool lifetime, and a re-dialing pool never thunders a restarted
// server.
func (p *pool) conn() (*poolConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	live := p.conns[:0]
	for _, pc := range p.conns {
		if !pc.isDead() {
			live = append(live, pc)
		}
	}
	p.conns = live
	if len(p.conns) < p.size {
		nc, err := p.dial()
		if err != nil {
			if len(p.conns) == 0 {
				return nil, err
			}
			// Degraded: the server refused a fresh dial but existing
			// connections still look live; keep using them.
		} else {
			pc := newPoolConn(nc, p.framed, p.wtimeout)
			p.conns = append(p.conns, pc)
			go pc.readLoop(pc.stop)
			p.rr++
			return pc, nil
		}
	}
	pc := p.conns[int(p.rr)%len(p.conns)]
	p.rr++
	return pc, nil
}

// close fails every connection and waits for the reader goroutines to
// exit, so a closed client leaves nothing running.
func (p *pool) close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.closed = true
	p.mu.Unlock()
	for _, pc := range conns {
		pc.fail(ErrClosed)
	}
	for _, pc := range conns {
		<-pc.rdone
	}
}

// poolConn is one demultiplexed connection: writers register a query
// ID and wait on a per-query channel; a single reader goroutine owns
// the connection's read side and routes each response to its waiter
// by ID — out-of-order responses (RFC 7766 pipelining) match their
// waiters regardless of arrival order. A response bearing an ID with
// no in-flight entry is dropped: with the demux table consulted
// first, reordering is ruled out and a mismatch is a stale or spoofed
// datagram (RFC 5452), not a protocol error.
type poolConn struct {
	nc       net.Conn
	framed   bool
	wtimeout time.Duration
	stop     chan struct{} // closed by fail; also unblocks the reader via nc.Close
	rdone    chan struct{} // closed when the reader exits

	writeMu sync.Mutex

	mu       sync.Mutex
	inflight map[uint16]chan *dnswire.Message
	dead     bool
	err      error
}

func newPoolConn(nc net.Conn, framed bool, wtimeout time.Duration) *poolConn {
	return &poolConn{
		nc:       nc,
		framed:   framed,
		wtimeout: wtimeout,
		stop:     make(chan struct{}),
		rdone:    make(chan struct{}),
		inflight: make(map[uint16]chan *dnswire.Message),
	}
}

func (pc *poolConn) isDead() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.dead
}

// register allocates a query ID unique among this connection's
// in-flight queries. The seed client's uint16(counter) wrapped
// silently, so with 65536 queries issued two live queries could share
// an ID and the second response would resolve the wrong waiter; here
// busy IDs are skipped.
func (pc *poolConn) register(next *atomic.Uint32) (uint16, chan *dnswire.Message, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.dead {
		return 0, nil, pc.errLocked()
	}
	for i := 0; i < 65536; i++ {
		id := uint16(next.Add(1))
		if id == 0 {
			continue // 0 is the placeholder in freshly packed queries
		}
		if _, busy := pc.inflight[id]; busy {
			continue
		}
		ch := make(chan *dnswire.Message, 1)
		pc.inflight[id] = ch
		return id, ch, nil
	}
	return 0, nil, errors.New("dnsclient: all query IDs in flight on one connection")
}

func (pc *poolConn) deregister(id uint16) {
	pc.mu.Lock()
	delete(pc.inflight, id)
	pc.mu.Unlock()
}

// deliver routes one response to its waiter. Exactly one of deliver
// and fail touches any given channel: both claim the in-flight entry
// under the lock before acting on it.
func (pc *poolConn) deliver(resp *dnswire.Message) {
	pc.mu.Lock()
	ch, ok := pc.inflight[resp.Header.ID]
	if ok {
		delete(pc.inflight, resp.Header.ID)
	}
	pc.mu.Unlock()
	if ok {
		ch <- resp // buffered; never blocks
	}
}

// fail marks the connection dead, closes it (unblocking the reader),
// and fails every in-flight query by closing its channel, so waiters
// see a clean connection error instead of hanging into their
// timeouts. Idempotent.
func (pc *poolConn) fail(err error) {
	pc.mu.Lock()
	if pc.dead {
		pc.mu.Unlock()
		return
	}
	pc.dead = true
	pc.err = err
	waiters := make([]chan *dnswire.Message, 0, len(pc.inflight))
	for id, ch := range pc.inflight {
		delete(pc.inflight, id)
		waiters = append(waiters, ch)
	}
	pc.mu.Unlock()
	close(pc.stop)
	pc.nc.Close()
	for _, ch := range waiters {
		close(ch)
	}
}

func (pc *poolConn) lastErr() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.errLocked()
}

func (pc *poolConn) errLocked() error {
	if pc.err != nil {
		return fmt.Errorf("dnsclient: connection failed: %w", pc.err)
	}
	return errors.New("dnsclient: connection failed")
}

func (pc *poolConn) write(buf []byte) error {
	pc.writeMu.Lock()
	defer pc.writeMu.Unlock()
	pc.nc.SetWriteDeadline(time.Now().Add(pc.wtimeout))
	_, err := pc.nc.Write(buf)
	return err
}

// readLoop is the connection's single reader: it holds one arena
// buffer for its lifetime, decodes each datagram or frame, and
// demultiplexes it to the waiter that registered the ID. Undecodable
// input is skipped (a garbage datagram must not kill a shared
// connection); a read error fails the connection and every waiter.
func (pc *poolConn) readLoop(stop <-chan struct{}) {
	defer close(pc.rdone)
	bufp := readBufs.Get().(*[]byte)
	defer readBufs.Put(bufp)
	buf := *bufp
	for {
		var n int
		var err error
		if pc.framed {
			n, err = readFrame(pc.nc, buf)
		} else {
			n, err = pc.nc.Read(buf)
		}
		if err != nil {
			select {
			case <-stop:
				// fail() already ran (close or write error); keep its cause.
			default:
				pc.fail(err)
			}
			return
		}
		resp := new(dnswire.Message)
		if resp.Unpack(buf[:n]) != nil || !resp.Header.Response {
			continue // garbage or an echoed query; keep reading
		}
		pc.deliver(resp)
	}
}

// readFrame reads one RFC 1035 §4.2.2 length-framed message into buf.
func readFrame(r io.Reader, buf []byte) (int, error) {
	if _, err := io.ReadFull(r, buf[:2]); err != nil {
		return 0, err
	}
	n := int(buf[0])<<8 | int(buf[1])
	if n > len(buf) {
		return 0, fmt.Errorf("dnsclient: %d-octet frame exceeds %d", n, len(buf))
	}
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		return 0, err
	}
	return n, nil
}
