//go:build race

package dnsclient

// raceEnabled lets allocation-budget tests skip under the race
// detector, whose instrumentation allocates inside sync.Pool.
const raceEnabled = true
