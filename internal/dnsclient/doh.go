package dnsclient

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
)

// dohPath is the RFC 8484 well-known query path.
const dohPath = "/dns-query"

const dohContentType = "application/dns-message"

// dohClient lazily builds the one multiplexed http.Client for this
// server. HTTP/2 keeps every worker's queries on a handful of
// established connections, so the per-probe cost after warm-up is one
// POST on an existing stream, not a TLS handshake.
func (c *Client) dohClient() (*http.Client, *url.URL, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, ErrClosed
	}
	if c.doh == nil {
		// A single *http.Transport funnels every HTTP/2 stream through
		// one connection (one writer loop, one flow-control window), so
		// under concurrent probing DoH would bottleneck where the other
		// transports fan out over PoolSize sockets. Round-robin across
		// PoolSize inner transports instead: still one multiplexed
		// http.Client, but with the same connection fan-out as the pools.
		rr := &rrTransport{ts: make([]*http.Transport, c.poolSize())}
		for i := range rr.ts {
			rr.ts[i] = &http.Transport{
				TLSClientConfig:     c.tlsConfigLocked(false),
				ForceAttemptHTTP2:   true,
				MaxIdleConns:        1,
				MaxIdleConnsPerHost: 1,
				IdleConnTimeout:     90 * time.Second,
				// DNS wire messages are tiny and high-entropy; skipping
				// content-coding negotiation shaves per-exchange overhead.
				DisableCompression: true,
				// Wide receive windows: a 64 KiB DNS ceiling never comes
				// near them, so the connection stops spending syscalls on
				// WINDOW_UPDATE chatter for 100-byte bodies.
				HTTP2: &http.HTTP2Config{
					MaxReceiveBufferPerConnection: 1 << 20,
					MaxReceiveBufferPerStream:     1 << 20,
				},
			}
		}
		c.doh = &http.Client{Transport: rr}
		u, err := url.Parse("https://" + c.Server + dohPath)
		if err != nil {
			c.doh = nil
			return nil, nil, fmt.Errorf("dnsclient: doh url: %w", err)
		}
		c.dohURL = u.String()
		c.dohU = u
	}
	return c.doh, c.dohU, nil
}

// dohExchange performs one RFC 8484 POST exchange. HTTP/2 gives each
// query its own stream, so unlike the datagram and stream pools there
// is no demux table: the transport itself rules out reordering, and a
// response bearing a different ID than the request is ErrIDMismatch.
func (c *Client) dohExchange(ctx context.Context, wire []byte) (*dnswire.Message, error) {
	hc, u, err := c.dohClient()
	if err != nil {
		return nil, err
	}
	id := uint16(c.nextID.Add(1))
	wire[0], wire[1] = byte(id>>8), byte(id)
	actx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	// Built by hand rather than via http.NewRequestWithContext: the URL
	// is pre-parsed once per client, and this sits on the per-query hot
	// path.
	req := (&http.Request{
		Method: http.MethodPost,
		URL:    u,
		Host:   u.Host,
		Header: http.Header{
			"Content-Type": {dohContentType},
			"Accept":       {dohContentType},
		},
		Body:          io.NopCloser(bytes.NewReader(wire)),
		ContentLength: int64(len(wire)),
	}).WithContext(actx)
	resp, err := hc.Do(req)
	if err != nil {
		if actx.Err() != nil && ctx.Err() == nil {
			return nil, ErrTimeout // per-attempt deadline, normalized like every transport
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("dnsclient: doh post: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxMsgSize))
		return nil, fmt.Errorf("dnsclient: doh status %s", resp.Status)
	}
	bufp := readBufs.Get().(*[]byte)
	defer readBufs.Put(bufp)
	n, err := readBody(resp.Body, *bufp)
	if err != nil {
		return nil, fmt.Errorf("dnsclient: doh body: %w", err)
	}
	msg := new(dnswire.Message)
	if err := msg.Unpack((*bufp)[:n]); err != nil {
		return nil, fmt.Errorf("dnsclient: doh response: %w", err)
	}
	if msg.Header.ID != id {
		return nil, ErrIDMismatch
	}
	return msg, nil
}

// rrTransport spreads requests round-robin over a fixed set of
// http.Transports, giving HTTP/2 the same connection-level parallelism
// as the datagram and stream pools while each inner transport keeps
// multiplexing its own streams.
type rrTransport struct {
	next atomic.Uint32
	ts   []*http.Transport
}

func (rr *rrTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return rr.ts[int(rr.next.Add(1))%len(rr.ts)].RoundTrip(req)
}

// CloseIdleConnections lets http.Client.CloseIdleConnections reach the
// inner transports.
func (rr *rrTransport) CloseIdleConnections() {
	for _, t := range rr.ts {
		t.CloseIdleConnections()
	}
}

// readBody reads r to EOF into buf, erroring when it does not fit.
func readBody(r io.Reader, buf []byte) (int, error) {
	total := 0
	for {
		n, err := r.Read(buf[total:])
		total += n
		switch {
		case err == io.EOF:
			return total, nil
		case err != nil:
			return total, err
		case total == len(buf):
			return total, fmt.Errorf("response exceeds %d octets", len(buf))
		}
	}
}
