package dnsclient

import (
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// flakyServer is a UDP-only DNS responder with programmable faults.
type flakyServer struct {
	conn *net.UDPConn
	// dropFirst drops this many requests before answering.
	dropFirst atomic.Int32
	// wrongIDFirst answers this many requests with a corrupted ID
	// before behaving (tests RFC 5452 ID filtering).
	wrongIDFirst atomic.Int32
	// garbageFirst sends undecodable bytes before the real answer.
	garbageFirst atomic.Int32
	// truncate sets the TC bit on every answer.
	truncate atomic.Bool
	requests atomic.Int32
}

func newFlakyServer(t *testing.T) *flakyServer {
	t.Helper()
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &flakyServer{conn: conn}
	t.Cleanup(func() { conn.Close() })
	go s.serve()
	return s
}

func (s *flakyServer) addr() string { return s.conn.LocalAddr().String() }

func (s *flakyServer) serve() {
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s.requests.Add(1)
		var query dnswire.Message
		if err := query.Unpack(buf[:n]); err != nil {
			continue
		}
		if s.dropFirst.Load() > 0 {
			s.dropFirst.Add(-1)
			continue
		}
		if s.garbageFirst.Load() > 0 {
			s.garbageFirst.Add(-1)
			s.conn.WriteToUDP([]byte{0xde, 0xad}, raddr)
			// Fall through: also send the real answer so the client
			// can succeed within the same attempt.
		}
		resp := dnswire.NewResponse(&query, dnswire.RCodeSuccess)
		resp.Header.Authoritative = true
		resp.Answers = append(resp.Answers, dnswire.Record{
			Name: query.Questions[0].Name, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.7")},
		})
		if s.truncate.Load() {
			resp.Header.Truncated = true
			resp.Answers = nil
		}
		if s.wrongIDFirst.Load() > 0 {
			s.wrongIDFirst.Add(-1)
			resp.Header.ID ^= 0xFFFF
		}
		out, err := resp.Pack(nil)
		if err != nil {
			continue
		}
		s.conn.WriteToUDP(out, raddr)
	}
}

func TestRetryAfterDrops(t *testing.T) {
	s := newFlakyServer(t)
	s.dropFirst.Store(2)
	c := New(s.addr())
	c.Timeout = 200 * time.Millisecond
	c.Retries = 3
	resp, err := c.Query("example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("query failed despite retries: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %v", resp.Answers)
	}
	if got := s.requests.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	s := newFlakyServer(t)
	s.dropFirst.Store(100)
	c := New(s.addr())
	c.Timeout = 100 * time.Millisecond
	c.Retries = 1
	if _, err := c.Query("example.com.", dnswire.TypeA); err == nil {
		t.Fatal("query succeeded with every packet dropped")
	}
	if got := s.requests.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2 (1 + 1 retry)", got)
	}
}

func TestIgnoresWrongID(t *testing.T) {
	s := newFlakyServer(t)
	s.wrongIDFirst.Store(1)
	c := New(s.addr())
	c.Timeout = 300 * time.Millisecond
	c.Retries = 2
	resp, err := c.Query("example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %v", resp.Answers)
	}
}

func TestIgnoresGarbageDatagram(t *testing.T) {
	s := newFlakyServer(t)
	s.garbageFirst.Store(1)
	c := New(s.addr())
	c.Timeout = 300 * time.Millisecond
	resp, err := c.Query("example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %v", resp.Answers)
	}
}

func TestTruncationWithoutTCPFails(t *testing.T) {
	// The flaky server is UDP-only; a TC answer forces the client to
	// try TCP, which must fail cleanly (connection refused).
	s := newFlakyServer(t)
	s.truncate.Store(true)
	c := New(s.addr())
	c.Timeout = 200 * time.Millisecond
	if _, err := c.Query("example.com.", dnswire.TypeA); err == nil {
		t.Fatal("TC fallback succeeded with no TCP listener")
	}
}

func TestProbeBatchEmpty(t *testing.T) {
	c := New("127.0.0.1:1")
	if got := c.ProbeBatch(nil, 4); len(got) != 0 {
		t.Errorf("ProbeBatch(nil) = %v", got)
	}
}

func TestProbeBatchPropagatesErrors(t *testing.T) {
	c := New("127.0.0.1:1") // nothing listening
	c.Timeout = 50 * time.Millisecond
	c.Retries = 0
	results := c.ProbeBatch([]string{"a.com.", "b.com."}, 2)
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%s: expected transport error", r.Name)
		}
	}
}

func TestQueryIDsDiffer(t *testing.T) {
	s := newFlakyServer(t)
	c := New(s.addr())
	c.Timeout = 300 * time.Millisecond
	r1, err := c.Query("a.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Query("b.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Header.ID == r2.Header.ID {
		t.Error("consecutive queries reused the same ID")
	}
}
