package dnsclient

import (
	"fmt"
	"net"
	"net/netip"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/resilience"
)

// flakyServer is a UDP-only DNS responder with programmable faults.
type flakyServer struct {
	conn *net.UDPConn
	// dropFirst drops this many requests before answering.
	dropFirst atomic.Int32
	// wrongIDFirst answers this many requests with a corrupted ID
	// before behaving (tests RFC 5452 ID filtering).
	wrongIDFirst atomic.Int32
	// garbageFirst sends undecodable bytes before the real answer.
	garbageFirst atomic.Int32
	// truncate sets the TC bit on every answer.
	truncate atomic.Bool
	requests atomic.Int32

	mu     sync.Mutex
	stamps []time.Time
}

// requestTimes returns the arrival time of every request seen so far.
func (s *flakyServer) requestTimes() []time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Time(nil), s.stamps...)
}

func newFlakyServer(t *testing.T) *flakyServer {
	t.Helper()
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &flakyServer{conn: conn}
	t.Cleanup(func() { conn.Close() })
	go s.serve()
	return s
}

func (s *flakyServer) addr() string { return s.conn.LocalAddr().String() }

func (s *flakyServer) serve() {
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s.requests.Add(1)
		s.mu.Lock()
		s.stamps = append(s.stamps, time.Now())
		s.mu.Unlock()
		var query dnswire.Message
		if err := query.Unpack(buf[:n]); err != nil {
			continue
		}
		if s.dropFirst.Load() > 0 {
			s.dropFirst.Add(-1)
			continue
		}
		if s.garbageFirst.Load() > 0 {
			s.garbageFirst.Add(-1)
			s.conn.WriteToUDP([]byte{0xde, 0xad}, raddr)
			// Fall through: also send the real answer so the client
			// can succeed within the same attempt.
		}
		resp := dnswire.NewResponse(&query, dnswire.RCodeSuccess)
		resp.Header.Authoritative = true
		resp.Answers = append(resp.Answers, dnswire.Record{
			Name: query.Questions[0].Name, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.7")},
		})
		if s.truncate.Load() {
			resp.Header.Truncated = true
			resp.Answers = nil
		}
		if s.wrongIDFirst.Load() > 0 {
			s.wrongIDFirst.Add(-1)
			resp.Header.ID ^= 0xFFFF
		}
		out, err := resp.Pack(nil)
		if err != nil {
			continue
		}
		s.conn.WriteToUDP(out, raddr)
	}
}

func TestRetryAfterDrops(t *testing.T) {
	s := newFlakyServer(t)
	s.dropFirst.Store(2)
	c := New(s.addr())
	c.Timeout = 200 * time.Millisecond
	c.Retries = 3
	resp, err := c.Query("example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("query failed despite retries: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %v", resp.Answers)
	}
	if got := s.requests.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
}

// TestRetryBackoffSpacing is the regression test for the back-to-back
// retransmit bug: retries used to fire with zero delay, hammering a
// server that had just dropped the previous datagram. Equal jitter
// guarantees at least half the deterministic delay between attempts,
// so the inter-arrival floor is provable, not probabilistic.
func TestRetryBackoffSpacing(t *testing.T) {
	s := newFlakyServer(t)
	s.dropFirst.Store(2)
	c := New(s.addr())
	c.Timeout = 50 * time.Millisecond
	c.Retries = 2
	c.Backoff = resilience.Backoff{Base: 200 * time.Millisecond, Max: time.Second, Jitter: resilience.JitterEqual}
	if _, err := c.Query("example.com.", dnswire.TypeA); err != nil {
		t.Fatalf("query failed despite retries: %v", err)
	}
	stamps := s.requestTimes()
	if len(stamps) != 3 {
		t.Fatalf("server saw %d requests, want 3", len(stamps))
	}
	// Attempt k retransmits after Base·2^k jittered in [d/2, d]; the
	// attempt timeout only adds to the gap.
	if g := stamps[1].Sub(stamps[0]); g < 100*time.Millisecond {
		t.Errorf("retry 1 fired %v after attempt 0, want ≥ 100ms", g)
	}
	if g := stamps[2].Sub(stamps[1]); g < 200*time.Millisecond {
		t.Errorf("retry 2 fired %v after retry 1, want ≥ 200ms", g)
	}
}

func TestRetriesExhausted(t *testing.T) {
	s := newFlakyServer(t)
	s.dropFirst.Store(100)
	c := New(s.addr())
	c.Timeout = 100 * time.Millisecond
	c.Retries = 1
	if _, err := c.Query("example.com.", dnswire.TypeA); err == nil {
		t.Fatal("query succeeded with every packet dropped")
	}
	if got := s.requests.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2 (1 + 1 retry)", got)
	}
}

func TestIgnoresWrongID(t *testing.T) {
	s := newFlakyServer(t)
	s.wrongIDFirst.Store(1)
	c := New(s.addr())
	c.Timeout = 300 * time.Millisecond
	c.Retries = 2
	resp, err := c.Query("example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %v", resp.Answers)
	}
}

func TestIgnoresGarbageDatagram(t *testing.T) {
	s := newFlakyServer(t)
	s.garbageFirst.Store(1)
	c := New(s.addr())
	c.Timeout = 300 * time.Millisecond
	resp, err := c.Query("example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %v", resp.Answers)
	}
}

func TestTruncationWithoutTCPFails(t *testing.T) {
	// The flaky server is UDP-only; a TC answer forces the client to
	// try TCP, which must fail cleanly (connection refused).
	s := newFlakyServer(t)
	s.truncate.Store(true)
	c := New(s.addr())
	c.Timeout = 200 * time.Millisecond
	if _, err := c.Query("example.com.", dnswire.TypeA); err == nil {
		t.Fatal("TC fallback succeeded with no TCP listener")
	}
}

func TestProbeBatchEmpty(t *testing.T) {
	c := New("127.0.0.1:1")
	if got := c.ProbeBatch(nil, 4); len(got) != 0 {
		t.Errorf("ProbeBatch(nil) = %v", got)
	}
}

func TestProbeBatchPropagatesErrors(t *testing.T) {
	c := New("127.0.0.1:1") // nothing listening
	c.Timeout = 50 * time.Millisecond
	c.Retries = 0
	results := c.ProbeBatch([]string{"a.com.", "b.com."}, 2)
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%s: expected transport error", r.Name)
		}
	}
}

func TestQueryIDsDiffer(t *testing.T) {
	s := newFlakyServer(t)
	c := New(s.addr())
	c.Timeout = 300 * time.Millisecond
	r1, err := c.Query("a.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Query("b.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Header.ID == r2.Header.ID {
		t.Error("consecutive queries reused the same ID")
	}
}

// --- ProbeBatch concurrency ---

// startStoreServer runs the real authoritative server over a
// programmatically built store: domains d000..dNNN where every 3rd
// has no A record, every 5th no MX, and every 7th is absent entirely
// (NXDOMAIN) — enough outcome diversity that an ordering bug cannot
// cancel out.
func startStoreServer(t testing.TB, n int) (*dnsserver.Server, []string) {
	t.Helper()
	store := dnsserver.NewStore()
	store.AddApex("com.")
	domains := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("d%03d.com", i)
		domains[i] = name
		if i%7 == 0 {
			continue // NXDOMAIN
		}
		store.Add(dnswire.Record{Name: name + ".", Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.NS{Host: "ns1." + name + "."}})
		if i%3 != 0 {
			store.Add(dnswire.Record{Name: name + ".", Class: dnswire.ClassIN, TTL: 60,
				Data: dnswire.A{Addr: netip.MustParseAddr("127.0.0.1")}})
		}
		if i%5 != 0 {
			store.Add(dnswire.Record{Name: name + ".", Class: dnswire.ClassIN, TTL: 60,
				Data: dnswire.MX{Preference: 10, Host: "mail." + name + "."}})
		}
	}
	srv := dnsserver.NewServer(store)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, domains
}

func TestProbeBatchOrderAcrossWorkerCounts(t *testing.T) {
	srv, domains := startStoreServer(t, 60)
	var baseline []ProbeResult
	for _, workers := range []int{1, 4, 32} {
		c := New(srv.Addr())
		c.Timeout = 2 * time.Second
		defer c.Close()
		results := c.ProbeBatch(domains, workers)
		if len(results) != len(domains) {
			t.Fatalf("workers=%d: %d results for %d domains", workers, len(results), len(domains))
		}
		for i, res := range results {
			if res.Name != domains[i] {
				t.Fatalf("workers=%d: position %d = %s, want %s", workers, i, res.Name, domains[i])
			}
			if res.Err != nil {
				t.Fatalf("workers=%d: %s: %v", workers, res.Name, res.Err)
			}
			wantNS := i%7 != 0
			wantA := wantNS && i%3 != 0
			wantMX := wantNS && i%5 != 0
			if res.HasNS != wantNS || res.HasA != wantA || res.HasMX != wantMX {
				t.Fatalf("workers=%d: %s = %+v, want NS=%v A=%v MX=%v", workers, res.Name, res, wantNS, wantA, wantMX)
			}
			if wantNS && (len(res.NSHosts) != 1 || res.NSHosts[0] != "ns1."+res.Name) {
				t.Fatalf("workers=%d: %s NSHosts = %v", workers, res.Name, res.NSHosts)
			}
		}
		if baseline == nil {
			baseline = results
		} else if !reflect.DeepEqual(results, baseline) {
			t.Fatalf("workers=%d results differ from workers=1 baseline", workers)
		}
	}
}

func TestProbeBatchTimeoutDrainsWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// Black hole: reads queries, never answers. Every probe times out;
	// the pool must still drain completely.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			if _, _, err := conn.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	c := New(conn.LocalAddr().String())
	c.Timeout = 100 * time.Millisecond
	c.Retries = 0
	domains := make([]string, 48)
	for i := range domains {
		domains[i] = fmt.Sprintf("t%02d.com", i)
	}
	results := c.ProbeBatch(domains, 32)
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("probe %d unexpectedly succeeded", i)
		}
	}
	// Close tears down the pooled sockets and their readers; after it,
	// only the test's own blackhole goroutine may remain.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("worker goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}
