//go:build !race

package dnsclient

const raceEnabled = false
