package dnsclient

import (
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// seedProbe replicates the pre-pool client's cost model — one freshly
// dialed UDP socket and one fresh 64 KiB read buffer per query, three
// sequential queries per probe — kept in-file so the pooling speedup
// stays measurable long after the dial-per-query code is gone.
func seedProbe(addr, domain string) error {
	fqdn := domain + "."
	for _, typ := range []dnswire.Type{dnswire.TypeNS, dnswire.TypeA, dnswire.TypeMX} {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			return err
		}
		query := dnswire.NewQuery(1, fqdn, typ)
		wire, err := query.Pack(nil)
		if err != nil {
			conn.Close()
			return err
		}
		if _, err := conn.Write(wire); err != nil {
			conn.Close()
			return err
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, maxMsgSize)
		n, err := conn.Read(buf)
		conn.Close()
		if err != nil {
			return err
		}
		resp := new(dnswire.Message)
		if err := resp.Unpack(buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkProbe measures whole probes (NS+A+MX against the real
// authoritative server) per transport, plus the seed dial-per-query
// baseline. CI parses the sub-benchmark names, so keep them stable:
// seed, udp, tcp, dot, doh.
func BenchmarkProbe(b *testing.B) {
	srv, domains := startStoreServer(b, 16)
	if err := srv.EnableDoT("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	if err := srv.EnableDoH("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	dot, doh := srv.DoTAddr(), srv.DoHAddr()

	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if err := seedProbe(srv.Addr(), domains[i%len(domains)]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "probes/s")
	})

	for _, tr := range Transports() {
		b.Run(string(tr), func(b *testing.B) {
			c := clientForBench(b, tr, srv.Addr(), dot, doh)
			// Warm up: dial the pool, complete TLS handshakes, populate
			// the session cache, fault in the buffer arena.
			for _, d := range domains {
				if res := c.Probe(d); res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if res := c.Probe(domains[i%len(domains)]); res.Err != nil {
						b.Fatal(res.Err)
					}
					i++
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "probes/s")
		})
	}
}

// TestProbeAllocationBudget is the allocations-per-probe regression
// gate for the pooled buffer arena: a probe is three queries, and the
// seed client paid a fresh 64 KiB read buffer for each (≥192 KiB per
// probe). The pooled client reuses arena buffers across queries, so
// steady-state cost must stay far below one buffer per probe.
func TestProbeAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget checked in the non-race run")
	}
	srv, domains := startStoreServer(t, 8)
	c := New(srv.Addr())
	defer c.Close()
	for _, d := range domains {
		if res := c.Probe(d); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 200
	for i := 0; i < rounds; i++ {
		if res := c.Probe(domains[1]); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	runtime.ReadMemStats(&after)
	perProbe := float64(after.TotalAlloc-before.TotalAlloc) / rounds
	const budget = 32 * 1024
	if perProbe > budget {
		t.Errorf("steady-state probe allocates %.0f B, budget %d B — is the read-buffer arena being bypassed?", perProbe, budget)
	}
	t.Logf("steady-state probe: %.0f B allocated (budget %d)", perProbe, budget)
}

func clientForBench(b *testing.B, tr Transport, udpAddr, dotAddr, dohAddr string) *Client {
	b.Helper()
	addr := udpAddr
	switch tr {
	case TransportDoT:
		addr = dotAddr
	case TransportDoH:
		addr = dohAddr
	}
	c := New(addr)
	c.Transport = tr
	b.Cleanup(func() { c.Close() })
	return c
}
