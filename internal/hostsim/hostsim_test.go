package hostsim

import (
	"net"
	"testing"
	"time"
)

func TestClosedPortRefuses(t *testing.T) {
	addr, err := ClosedPort()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Error("closed port accepted a connection")
	}
}

func TestMapperResolve(t *testing.T) {
	m, err := NewMapper()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	m.Open("active.com", 80, ln.Addr().String())

	if got := m.Resolve("active.com", 80); got != ln.Addr().String() {
		t.Errorf("open resolve = %q", got)
	}
	if got := m.Resolve("active.com", 443); got != m.RefusedAddr() {
		t.Errorf("closed port resolve = %q", got)
	}
	if got := m.Resolve("other.com", 80); got != m.RefusedAddr() {
		t.Errorf("unknown domain resolve = %q", got)
	}
	// Case and trailing-dot insensitivity.
	if got := m.Resolve("ACTIVE.com.", 80); got != ln.Addr().String() {
		t.Errorf("case-insensitive resolve = %q", got)
	}
	if !m.IsOpen("active.com", 80) || m.IsOpen("active.com", 443) {
		t.Error("IsOpen mismatch")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestMapperEndToEnd(t *testing.T) {
	m, err := NewMapper()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	m.Open("up.com", 80, ln.Addr().String())

	if _, err := net.DialTimeout("tcp", m.Resolve("up.com", 80), time.Second); err != nil {
		t.Errorf("open port unreachable: %v", err)
	}
	if _, err := net.DialTimeout("tcp", m.Resolve("down.com", 80), time.Second); err == nil {
		t.Error("closed mapping accepted a connection")
	}
}
