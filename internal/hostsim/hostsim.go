// Package hostsim maps (domain, port) pairs onto real loopback
// listeners. The paper port-scans TCP/80 and TCP/443 on the public
// addresses of detected homographs; offline we cannot bind hundreds of
// public IPs, so the simulator substitutes a resolver: domains whose
// ground truth says a port is open resolve to the shared web
// simulator's listener for that scheme, and closed ports resolve to a
// loopback port that is guaranteed to refuse connections. The scanning
// and HTTP code paths are identical to probing real hosts — real
// net.Dial, real refusals, real TLS.
package hostsim

import (
	"fmt"
	"net"
	"strings"
	"sync"
)

// Mapper resolves (domain, port) to a dialable "host:port" address.
type Mapper struct {
	mu      sync.RWMutex
	open    map[string]string // "domain:port" -> listener address
	refused string            // address that refuses connections
}

// NewMapper allocates a mapper and reserves a loopback port that
// refuses connections (used for every closed domain/port).
func NewMapper() (*Mapper, error) {
	refused, err := ClosedPort()
	if err != nil {
		return nil, err
	}
	return &Mapper{
		open:    make(map[string]string),
		refused: refused,
	}, nil
}

// ClosedPort returns a loopback "host:port" where nothing listens: it
// binds an ephemeral port and immediately closes it. The kernel will
// refuse subsequent connections (until ephemeral reuse, which is
// harmless within a test run).
func ClosedPort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("hostsim: reserving closed port: %w", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

func key(domain string, port int) string {
	return strings.ToLower(strings.TrimSuffix(domain, ".")) + ":" + itoa(port)
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// Open declares that domain answers on port at the given listener
// address.
func (m *Mapper) Open(domain string, port int, addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.open[key(domain, port)] = addr
}

// Resolve returns the address to dial for (domain, port). Closed
// ports resolve to the refused address, so dialing errors look exactly
// like scanning a host with the port closed.
func (m *Mapper) Resolve(domain string, port int) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if addr, ok := m.open[key(domain, port)]; ok {
		return addr
	}
	return m.refused
}

// IsOpen reports whether the mapper has a listener for (domain, port).
func (m *Mapper) IsOpen(domain string, port int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.open[key(domain, port)]
	return ok
}

// RefusedAddr exposes the closed-port address (tests use it).
func (m *Mapper) RefusedAddr() string { return m.refused }

// Len reports how many (domain, port) pairs are open.
func (m *Mapper) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.open)
}
