// Package blacklist models the three threat feeds the paper checks its
// detected homographs against in Table 14: hpHosts (a large
// community-maintained host file), Google Safe Browsing and Symantec
// DeepSight (smaller, high-confidence commercial feeds). Feeds are
// populated from the registry's ground truth plus realistic filler
// entries (unrelated malicious domains, including Cyrillic-TLD ones the
// paper mentions), so matching behaves like querying the real lists:
// most entries are not homographs, and the commercial feeds are far
// smaller than the community one.
package blacklist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/punycode"
	"repro/internal/registry"
	"repro/internal/stats"
)

// Feed is one blacklist: a named set of domains.
type Feed struct {
	Name string

	mu      sync.RWMutex
	entries map[string]bool
}

// NewFeed returns an empty feed.
func NewFeed(name string) *Feed {
	return &Feed{Name: name, entries: make(map[string]bool)}
}

// Add inserts a domain.
func (f *Feed) Add(domain string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.entries[normalize(domain)] = true
}

// Contains reports whether domain is listed.
func (f *Feed) Contains(domain string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.entries[normalize(domain)]
}

// Len reports the feed size.
func (f *Feed) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.entries)
}

// Match returns the subset of domains present in the feed, preserving
// order.
func (f *Feed) Match(domains []string) []string {
	var out []string
	for _, d := range domains {
		if f.Contains(d) {
			out = append(out, d)
		}
	}
	return out
}

// normalize reduces a feed entry (or a queried domain) to the one
// canonical form both sides of a lookup meet on: the lowercased ACE
// FQDN, trailing root dot dropped. Routing through punycode.ToASCII
// means a Unicode-form entry ("gооgle.com") and a mixed-case ACE entry
// ("XN--GGLE-55DA.COM") both land on "xn--ggle-55da.com" — the exact
// shape the detection pipeline emits — instead of silently never
// matching. Entries that fail IDNA conversion (overlong labels, stray
// encodings real feeds do carry) fall back to the unified case fold so
// they still match byte-identical queries.
func normalize(domain string) string {
	d := strings.TrimSuffix(strings.TrimSpace(domain), ".")
	if d == "" {
		return ""
	}
	if ace, err := punycode.ToASCII(d); err == nil {
		return ace
	}
	return punycode.FoldString(d)
}

// Write emits the feed as a hosts-file-style list, sorted.
func (f *Feed) Write(w io.Writer) error {
	f.mu.RLock()
	domains := make([]string, 0, len(f.entries))
	for d := range f.entries {
		domains = append(domains, d)
	}
	f.mu.RUnlock()
	sort.Strings(domains)
	bw := bufio.NewWriter(w)
	for _, d := range domains {
		if _, err := fmt.Fprintf(bw, "127.0.0.1 %s\n", d); err != nil {
			return fmt.Errorf("blacklist: %w", err)
		}
	}
	return bw.Flush()
}

// Parse reads a hosts-file-style list ("127.0.0.1 domain" or bare
// domains, # comments).
func Parse(name string, r io.Reader) (*Feed, error) {
	f := NewFeed(name)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		domain := fields[len(fields)-1]
		f.Add(domain)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blacklist: %w", err)
	}
	return f, nil
}

// Set bundles the three feeds of Table 14.
type Set struct {
	HpHosts  *Feed
	GSB      *Feed
	Symantec *Feed
}

// Feeds lists the set in the paper's column order.
func (s *Set) Feeds() []*Feed {
	return []*Feed{s.HpHosts, s.GSB, s.Symantec}
}

// AnyContains reports whether any feed lists domain.
func (s *Set) AnyContains(domain string) bool {
	for _, f := range s.Feeds() {
		if f.Contains(domain) {
			return true
		}
	}
	return false
}

// FillerCounts sizes the unrelated (non-homograph) population of each
// feed. The hpHosts community feed dwarfs the commercial ones, and
// includes the 1,054 Cyrillic 'рф' ccTLD entries the paper calls out
// in Section 7.1.
type FillerCounts struct {
	HpHosts   int
	GSB       int
	Symantec  int
	RFDomains int // entries under the Cyrillic рф TLD, all in hpHosts
}

// DefaultFiller mirrors the relative feed sizes the paper describes.
func DefaultFiller() FillerCounts {
	return FillerCounts{HpHosts: 50000, GSB: 4000, Symantec: 1500, RFDomains: 1054}
}

// FromRegistry builds the three feeds from ground truth: homographs
// carry their per-feed flags, malicious redirect targets are listed in
// hpHosts (the paper found those via VirusTotal), and filler entries
// pad each feed to realistic size.
func FromRegistry(reg *registry.Registry, filler FillerCounts, seed uint64) *Set {
	s := &Set{
		HpHosts:  NewFeed("hpHosts"),
		GSB:      NewFeed("GSB"),
		Symantec: NewFeed("Symantec"),
	}
	for i := range reg.Homographs {
		h := &reg.Homographs[i]
		if h.Blacklist.Has(registry.BLHpHosts) {
			s.HpHosts.Add(h.ASCII)
		}
		if h.Blacklist.Has(registry.BLGSB) {
			s.GSB.Add(h.ASCII)
		}
		if h.Blacklist.Has(registry.BLSymantec) {
			s.Symantec.Add(h.ASCII)
		}
		if h.Redirect == registry.RedirMalicious && h.RedirectTarget != "" {
			s.HpHosts.Add(h.RedirectTarget)
		}
	}
	rng := stats.NewRNG(seed ^ 0xb1ac)
	fill := func(f *Feed, n int, tld string) {
		for f.Len() < n {
			var sb strings.Builder
			l := 6 + rng.Intn(10)
			for i := 0; i < l; i++ {
				sb.WriteByte(byte('a' + rng.Intn(26)))
			}
			sb.WriteString(tld)
			f.Add(sb.String())
		}
	}
	fill(s.HpHosts, filler.HpHosts-filler.RFDomains, ".badexample")
	fill(s.HpHosts, filler.HpHosts, ".xn--p1ai") // рф in ACE form
	fill(s.GSB, filler.GSB, ".badexample")
	fill(s.Symantec, filler.Symantec, ".badexample")
	return s
}

// TableRow is one row of Table 14: per-feed homograph match counts
// split by the homoglyph database that detected the homograph.
type TableRow struct {
	Feed    string
	UC      int // homographs detectable via UC
	SimChar int // homographs detectable via SimChar
	Union   int
}

// TableFourteen matches the given homograph sets (the detector's
// per-database outputs) against all feeds.
func TableFourteen(s *Set, detectedUC, detectedSim, detectedUnion []string) []TableRow {
	rows := make([]TableRow, 0, 3)
	for _, f := range s.Feeds() {
		rows = append(rows, TableRow{
			Feed:    f.Name,
			UC:      len(f.Match(detectedUC)),
			SimChar: len(f.Match(detectedSim)),
			Union:   len(f.Match(detectedUnion)),
		})
	}
	return rows
}
