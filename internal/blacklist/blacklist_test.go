package blacklist

import (
	"bytes"
	"strings"
	"testing"
)

func TestFeedBasics(t *testing.T) {
	f := NewFeed("test")
	f.Add("Evil.COM.")
	if !f.Contains("evil.com") || !f.Contains("EVIL.com.") {
		t.Error("normalization broken")
	}
	if f.Contains("good.com") {
		t.Error("false positive")
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestMatchPreservesOrder(t *testing.T) {
	f := NewFeed("test")
	f.Add("b.com")
	f.Add("d.com")
	got := f.Match([]string{"a.com", "b.com", "c.com", "d.com"})
	if len(got) != 2 || got[0] != "b.com" || got[1] != "d.com" {
		t.Errorf("Match = %v", got)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	f := NewFeed("rt")
	f.Add("one.com")
	f.Add("two.com")
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse("rt2", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !got.Contains("one.com") || !got.Contains("two.com") {
		t.Errorf("round trip lost entries: %d", got.Len())
	}
}

func TestParseFormats(t *testing.T) {
	input := `# comment line

127.0.0.1 hosts-style.com
bare-style.com
  0.0.0.0   spaced.com
`
	f, err := Parse("p", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"hosts-style.com", "bare-style.com", "spaced.com"} {
		if !f.Contains(d) {
			t.Errorf("missing %s", d)
		}
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestSetAnyContains(t *testing.T) {
	s := &Set{HpHosts: NewFeed("hp"), GSB: NewFeed("gsb"), Symantec: NewFeed("sym")}
	s.GSB.Add("bad.com")
	if !s.AnyContains("bad.com") || s.AnyContains("ok.com") {
		t.Error("AnyContains mismatch")
	}
	if len(s.Feeds()) != 3 {
		t.Error("Feeds() size")
	}
}

func TestTableFourteenCounts(t *testing.T) {
	s := &Set{HpHosts: NewFeed("hpHosts"), GSB: NewFeed("GSB"), Symantec: NewFeed("Symantec")}
	// 3 homographs; hp lists all, gsb lists one.
	for _, d := range []string{"h1.com", "h2.com", "h3.com"} {
		s.HpHosts.Add(d)
	}
	s.GSB.Add("h2.com")
	uc := []string{"h1.com"}
	sim := []string{"h2.com", "h3.com"}
	union := []string{"h1.com", "h2.com", "h3.com"}
	rows := TableFourteen(s, uc, sim, union)
	if rows[0].UC != 1 || rows[0].SimChar != 2 || rows[0].Union != 3 {
		t.Errorf("hpHosts row = %+v", rows[0])
	}
	if rows[1].UC != 0 || rows[1].SimChar != 1 || rows[1].Union != 1 {
		t.Errorf("GSB row = %+v", rows[1])
	}
	if rows[2].Union != 0 {
		t.Errorf("Symantec row = %+v", rows[2])
	}
}

func TestNormalizeACEAndUnicodeAgree(t *testing.T) {
	f := NewFeed("test")
	// A Unicode-form entry, a mixed-case ACE entry and a mixed-case
	// Unicode entry must all hit the ACE FQDN the detection pipeline
	// emits, and vice versa. Before the normalize fix, only the
	// byte-identical lowercase ACE form matched.
	f.Add("gооgle.com")           // Cyrillic о ×2: encodes to xn--ggle-55da
	f.Add("XN--FCEBOOK-2FG.COM.") // uppercase ACE, trailing root dot
	f.Add("PАYPAL.com")           // uppercase with Cyrillic А
	for _, q := range []string{
		"xn--ggle-55da.com",
		"XN--GGLE-55DA.COM",
		"gооgle.com",
		"xn--fcebook-2fg.com",
		"fаcebook.com", // Cyrillic а
		"xn--pypal-4ve.com",
		"pаypal.com",
	} {
		if !f.Contains(q) {
			t.Errorf("Contains(%q) = false, want true", q)
		}
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d, want 3 (forms must collapse to one entry each)", f.Len())
	}
	if f.Contains("google.com") || f.Contains("paypal.com") {
		t.Error("ASCII originals must not match their homograph entries")
	}
	// Malformed entries (label beyond the 63-octet ACE limit) fall back
	// to a pure case fold and still match byte-identical queries.
	long := strings.Repeat("ö", 80) + ".com"
	f.Add(long)
	if !f.Contains(long) {
		t.Error("malformed entry must still match itself")
	}
}

func TestMatchACEFQDNsAgainstMixedFeed(t *testing.T) {
	// The Table-14 path: detected homographs arrive as lowercase ACE
	// FQDNs; the feed was parsed from a hosts file in whatever form the
	// feed publisher chose.
	feedFile := "127.0.0.1 GООGLE.com\n127.0.0.1 xn--mazon-3ve.CO.UK\n# comment\n127.0.0.1 unrelated.badexample\n"
	f, err := Parse("hp", strings.NewReader(feedFile))
	if err != nil {
		t.Fatal(err)
	}
	detected := []string{"xn--ggle-55da.com", "xn--mazon-3ve.co.uk", "xn--clean-0a.com"}
	got := f.Match(detected)
	want := []string{"xn--ggle-55da.com", "xn--mazon-3ve.co.uk"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Match = %v, want %v", got, want)
	}
}
