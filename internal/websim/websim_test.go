package websim

import (
	"crypto/tls"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// get fetches http://<addr>/ with the given Host header and UA.
func get(t *testing.T, addr, host, ua string) (*http.Response, string) {
	t.Helper()
	client := &http.Client{
		Timeout: 2 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	req, err := http.NewRequest("GET", "http://"+addr+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = host
	if ua != "" {
		req.Header.Set("User-Agent", ua)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("GET %s (host %s): %v", addr, host, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, string(body)
}

func TestParkedPage(t *testing.T) {
	s := startServer(t)
	s.SetSite("parked.com", Site{Kind: "parked"})
	resp, body := get(t, s.HTTPAddr(), "parked.com", "")
	if resp.StatusCode != 200 || !strings.Contains(body, MarkerParked) {
		t.Errorf("status %d body %q", resp.StatusCode, body)
	}
}

func TestForSalePage(t *testing.T) {
	s := startServer(t)
	s.SetSite("buyme.com", Site{Kind: "forsale"})
	_, body := get(t, s.HTTPAddr(), "buyme.com", "")
	if !strings.Contains(body, MarkerForSale) {
		t.Errorf("body %q", body)
	}
}

func TestRedirect(t *testing.T) {
	s := startServer(t)
	s.SetSite("redir.com", Site{Kind: "redirect", RedirectTarget: "target.com"})
	resp, _ := get(t, s.HTTPAddr(), "redir.com", "")
	if resp.StatusCode != 302 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://target.com/" {
		t.Errorf("Location = %q", loc)
	}
}

func TestEmptyAndUnknownHost(t *testing.T) {
	s := startServer(t)
	s.SetSite("empty.com", Site{Kind: "empty"})
	resp, body := get(t, s.HTTPAddr(), "empty.com", "")
	if resp.StatusCode != 200 || body != "" {
		t.Errorf("empty: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = get(t, s.HTTPAddr(), "unregistered.com", "")
	if resp.StatusCode != 404 {
		t.Errorf("unknown host status = %d", resp.StatusCode)
	}
}

func TestErrorKindResetsConnection(t *testing.T) {
	s := startServer(t)
	s.SetSite("broken.com", Site{Kind: "error"})
	client := &http.Client{Timeout: 2 * time.Second}
	req, _ := http.NewRequest("GET", "http://"+s.HTTPAddr()+"/", nil)
	req.Host = "broken.com"
	_, err := client.Do(req)
	if err == nil {
		t.Error("broken site served a response")
	}
}

func TestPhishingCloaking(t *testing.T) {
	s := startServer(t)
	s.SetSite("phish.com", Site{Kind: "phishing", Cloaking: true})
	// A browser UA sees the credential form.
	_, body := get(t, s.HTTPAddr(), "phish.com", "Mozilla/5.0 (Windows NT 10.0) Safari/537.36")
	if !strings.Contains(body, MarkerLogin) {
		t.Errorf("browser body %q", body)
	}
	// A crawler UA gets cloaked.
	_, body = get(t, s.HTTPAddr(), "phish.com", "Googlebot/2.1")
	if strings.Contains(body, MarkerLogin) {
		t.Error("crawler saw the phishing form")
	}
	// Without cloaking, crawlers see it too.
	s.SetSite("phish2.com", Site{Kind: "phishing"})
	_, body = get(t, s.HTTPAddr(), "phish2.com", "Googlebot/2.1")
	if !strings.Contains(body, MarkerLogin) {
		t.Error("uncloaked phishing hidden from crawler")
	}
}

func TestHTTPSListener(t *testing.T) {
	s := startServer(t)
	s.SetSite("secure.com", Site{Kind: "normal", Title: "Secure"})
	client := &http.Client{
		Timeout: 2 * time.Second,
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{InsecureSkipVerify: true},
		},
	}
	req, _ := http.NewRequest("GET", "https://"+s.HTTPSAddr()+"/", nil)
	req.Host = "secure.com"
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "Secure") {
		t.Errorf("https body %q", body)
	}
}

func TestNormalizeHostWithPort(t *testing.T) {
	s := NewServer()
	s.SetSite("a.com", Site{Kind: "normal"})
	if _, ok := s.Site("A.COM:8080"); !ok {
		t.Error("host:port lookup failed")
	}
	if _, ok := s.Site("a.com."); !ok {
		t.Error("trailing-dot lookup failed")
	}
}
