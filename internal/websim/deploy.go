package websim

import (
	"repro/internal/hostsim"
	"repro/internal/registry"
)

// Deploy registers every active homograph of reg with the web server
// and opens its ground-truth ports in the mapper. Call after
// srv.Start(). Returns the number of sites deployed.
func Deploy(reg *registry.Registry, srv *Server, mapper *hostsim.Mapper) int {
	n := 0
	for i := range reg.Homographs {
		h := &reg.Homographs[i]
		if !h.Active() {
			continue
		}
		site := Site{Title: h.Unicode}
		switch h.Category {
		case registry.CatParked:
			site.Kind = "parked"
		case registry.CatForSale:
			site.Kind = "forsale"
		case registry.CatRedirect:
			site.Kind = "redirect"
			site.RedirectTarget = h.RedirectTarget
		case registry.CatNormal:
			switch h.Flavor {
			case "Phishing":
				site.Kind = "phishing"
				site.Cloaking = h.Cloaking
			case "Portal":
				site.Kind = "portal"
			default:
				site.Kind = "normal"
			}
		case registry.CatEmpty:
			site.Kind = "empty"
		case registry.CatError:
			site.Kind = "error"
		default:
			continue
		}
		srv.SetSite(h.ASCII, site)
		if h.Port80 {
			mapper.Open(h.ASCII, 80, srv.HTTPAddr())
		}
		if h.Port443 {
			mapper.Open(h.ASCII, 443, srv.HTTPSAddr())
		}
		n++
	}
	return n
}
