// Package websim serves the websites of the simulated homograph
// population: parked pages, for-sale pages, redirects, normal sites,
// empty responses, broken servers, and the User-Agent-cloaking
// phishing site of the paper's Table 11. One HTTP listener and one
// HTTPS listener (self-signed TLS) are shared by all domains; the
// Host header selects per-domain behaviour, exactly as name-based
// virtual hosting does on real parking infrastructure.
package websim

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"log"
	"math/big"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Site is the behaviour of one simulated domain.
type Site struct {
	// Kind selects the page template. Valid kinds: "parked",
	// "forsale", "redirect", "normal", "empty", "error", "phishing",
	// "portal", "slow" (hang without responding) and "http500"
	// (a backend answering 500 on every request).
	Kind string
	// Delay holds the response back before any bytes are written —
	// a slow-but-alive host, as opposed to the "slow" kind's hang.
	// The fault-injection harness uses it to prove per-stage timeouts
	// keep the pipeline moving.
	Delay time.Duration
	// RedirectTarget is the registrable domain a "redirect" site
	// points at.
	RedirectTarget string
	// Cloaking makes the site serve benign content to crawlers
	// (User-Agent containing "bot" or "headless") and the real page
	// to browsers — the evasion the paper observed on the gmail
	// phishing homograph.
	Cloaking bool
	// Title is injected into normal/portal pages.
	Title string
}

// Server hosts the shared HTTP and HTTPS listeners.
type Server struct {
	mu    sync.RWMutex
	sites map[string]Site

	httpLn  net.Listener
	httpsLn net.Listener
	httpSrv *http.Server
	tlsSrv  *http.Server
}

// NewServer returns an empty server; register sites with SetSite.
func NewServer() *Server {
	return &Server{sites: make(map[string]Site)}
}

// SetSite registers (or replaces) the behaviour of domain.
func (s *Server) SetSite(domain string, site Site) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sites[normalize(domain)] = site
}

// Site looks up a registered site.
func (s *Server) Site(domain string) (Site, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	site, ok := s.sites[normalize(domain)]
	return site, ok
}

func normalize(domain string) string {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	if host, _, err := net.SplitHostPort(domain); err == nil {
		return host
	}
	return domain
}

// Start binds both listeners on loopback ephemeral ports.
func (s *Server) Start() error {
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("websim: http listen: %w", err)
	}
	httpsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		httpLn.Close()
		return fmt.Errorf("websim: https listen: %w", err)
	}
	cert, err := selfSigned()
	if err != nil {
		httpLn.Close()
		httpsLn.Close()
		return err
	}
	s.httpLn = httpLn
	s.httpsLn = httpsLn
	// Port scanners handshake-and-hangup constantly; discard the
	// server's per-connection error log so they don't spam output.
	quiet := log.New(io.Discard, "", 0)
	s.httpSrv = &http.Server{Handler: http.HandlerFunc(s.handle), ErrorLog: quiet}
	s.tlsSrv = &http.Server{Handler: http.HandlerFunc(s.handle), ErrorLog: quiet}
	go s.httpSrv.Serve(httpLn)
	go s.tlsSrv.Serve(tls.NewListener(httpsLn, &tls.Config{
		Certificates: []tls.Certificate{cert},
	}))
	return nil
}

// HTTPAddr is the shared plain-HTTP listener address.
func (s *Server) HTTPAddr() string { return s.httpLn.Addr().String() }

// HTTPSAddr is the shared TLS listener address.
func (s *Server) HTTPSAddr() string { return s.httpsLn.Addr().String() }

// Close shuts both listeners down.
func (s *Server) Close() error {
	var first error
	for _, srv := range []*http.Server{s.httpSrv, s.tlsSrv} {
		if srv != nil {
			if err := srv.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Page markers. The classifier looks for these phrases the way real
// classifiers look for parking-service boilerplate; they are exported
// so webclassify does not share private constants with websim.
const (
	MarkerParked  = "This domain is parked free, courtesy of the registrar"
	MarkerForSale = "This premium domain name is for sale"
	MarkerLogin   = "Enter your password to continue"
)

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	site, ok := s.Site(r.Host)
	if !ok {
		http.NotFound(w, r)
		return
	}
	kind := site.Kind
	if site.Cloaking && kind == "phishing" && isCrawler(r.UserAgent()) {
		kind = "empty"
	}
	if site.Delay > 0 {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(site.Delay):
		}
	}
	switch kind {
	case "parked":
		fmt.Fprintf(w, "<html><head><title>%s</title></head><body><h1>%s</h1><p>%s.</p><div class=\"ads\">Related searches: insurance, credit, loans</div></body></html>",
			r.Host, r.Host, MarkerParked)
	case "forsale":
		fmt.Fprintf(w, "<html><head><title>%s is for sale</title></head><body><h1>%s</h1><p>%s. Make an offer today!</p></body></html>",
			r.Host, r.Host, MarkerForSale)
	case "redirect":
		target := site.RedirectTarget
		if !strings.Contains(target, "://") {
			target = "http://" + target + "/"
		}
		http.Redirect(w, r, target, http.StatusFound)
	case "normal", "portal":
		title := site.Title
		if title == "" {
			title = r.Host
		}
		fmt.Fprintf(w, "<html><head><title>%s</title></head><body><h1>%s</h1><p>Welcome to %s. Latest rates, news and articles updated daily.</p><a href=\"/about\">About us</a></body></html>",
			title, title, r.Host)
	case "phishing":
		fmt.Fprintf(w, "<html><head><title>Sign in</title></head><body><form method=post action=/login><h1>Sign in</h1><p>%s</p><input name=email><input name=password type=password></form></body></html>",
			MarkerLogin)
	case "empty":
		// 200 with empty body.
	case "http500":
		// A live listener fronting a dead backend: every request is
		// answered, but with a 5xx — the paper's "Error" class includes
		// these alongside timeouts and resets.
		http.Error(w, "internal server error", http.StatusInternalServerError)
	case "slow":
		// A hung host: hold the connection open without responding,
		// long past any sane client timeout. The paper's "Error"
		// class includes screenshot timeouts.
		select {
		case <-r.Context().Done():
		case <-time.After(30 * time.Second):
		}
	case "error":
		// Simulate a broken host: hijack the connection and slam it
		// shut so the client sees a protocol error, like the paper's
		// screenshot timeouts.
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("websim: ResponseWriter does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0) // RST instead of FIN
			}
			conn.Close()
		}
	default:
		http.Error(w, "unknown site kind", http.StatusInternalServerError)
	}
}

func isCrawler(ua string) bool {
	ua = strings.ToLower(ua)
	for _, marker := range []string{"bot", "headless", "spider", "crawl", "preview"} {
		if strings.Contains(ua, marker) {
			return true
		}
	}
	return false
}

// selfSigned builds an in-memory ECDSA certificate for the HTTPS
// listener. Probing clients skip verification, as survey crawlers do
// when scanning abusive infrastructure.
func selfSigned() (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("websim: generating key: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "websim.invalid"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IsCA:         true,
		DNSNames:     []string{"*"},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("websim: creating certificate: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}
