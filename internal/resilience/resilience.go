// Package resilience is the shared fault-tolerance layer for the
// framework's long-running paths: exponential backoff with jitter,
// bounded retry budgets, and a small circuit-breaker/health state
// machine (ok → degraded → open). The continuous-monitoring model only
// works if every loop that talks to the outside world — the zone
// watcher polling a registry drop, the DNS prober hitting a resolver,
// the snapshot watcher statting an artifact path — degrades and
// recovers the same way: failures widen the retry cadence instead of
// hammering the dependency, sustained failure trips a breaker that the
// operator can see, and recovery is observed, not assumed.
package resilience

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// Jitter selects how a computed delay is randomized. Full jitter
// (uniform in [0, d]) decorrelates a fleet of retriers best and is the
// default; equal jitter (uniform in [d/2, d]) keeps a guaranteed floor
// of half the deterministic delay, which callers that must provably
// space attempts (the DNS client's retransmits) want; none is for
// tests and deterministic schedules.
type Jitter int

const (
	JitterFull Jitter = iota
	JitterEqual
	JitterNone
)

// Backoff computes per-attempt delays: Base·Factor^attempt, capped at
// Max, then jittered. The zero value is usable — 100ms base, ×2
// growth, 30s cap, full jitter.
type Backoff struct {
	// Base is the pre-jitter delay for attempt 0. 0 means 100ms.
	Base time.Duration
	// Max caps the pre-jitter delay. 0 means 30s.
	Max time.Duration
	// Factor is the exponential growth per attempt. 0 means 2.
	Factor float64
	// Jitter randomizes the computed delay (default JitterFull).
	Jitter Jitter
	// Rand supplies uniform [0,1) randomness; nil uses math/rand/v2.
	// Injectable so tests can pin the jitter.
	Rand func() float64
}

// Delay returns the jittered delay for the given attempt (0-based:
// attempt 0 is the delay before the first retry).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 30 * time.Second
	}
	factor := b.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	rnd := b.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	switch b.Jitter {
	case JitterEqual:
		d = d/2 + rnd()*d/2
	case JitterNone:
		// keep d
	default: // JitterFull
		d = rnd() * d
	}
	return time.Duration(d)
}

// Sleep blocks for the attempt's jittered delay or until ctx is done,
// returning ctx's error in that case. A zero computed delay returns
// immediately (but still observes an already-cancelled ctx).
func (b Backoff) Sleep(ctx context.Context, attempt int) error {
	d := b.Delay(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry stops immediately instead of burning
// the remaining budget — the answer is wrong, not late (NXDOMAIN, a
// checksum mismatch, a malformed request).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// RetryPolicy is a per-operation retry budget: how many total attempts
// an operation gets, and how the attempts are spaced.
type RetryPolicy struct {
	// Attempts is the total attempt budget (first try included).
	// 0 means 3.
	Attempts int
	// Backoff spaces the attempts.
	Backoff Backoff
}

// Retry runs op under the policy: attempts are spaced by the backoff,
// a Permanent error (or ctx cancellation) stops immediately, and the
// last error is returned once the budget is spent. The error is
// unwrapped of its Permanent marker before returning.
func Retry(ctx context.Context, p RetryPolicy, op func(ctx context.Context) error) error {
	attempts := p.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := p.Backoff.Sleep(ctx, attempt-1); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		lastErr = err
	}
	return lastErr
}
