package resilience

import (
	"sync"
	"time"
)

// State is a dependency's health as the breaker sees it.
//
//	ok       — recent operations succeed; run at full cadence.
//	degraded — failures are accumulating; keep trying, expect errors,
//	           and tell the operator.
//	open     — the dependency is down; stop hammering it and admit
//	           only an occasional probe until one succeeds.
type State int32

const (
	StateOK State = iota
	StateDegraded
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateOpen:
		return "open"
	default:
		return "unknown"
	}
}

// Breaker is a small circuit breaker / health state machine. Callers
// ask Allow before an operation and report Success/Failure after it;
// the breaker moves ok → degraded on the first failure of a streak,
// degraded → open once the streak reaches OpenAfter, and open →
// degraded → ok as probes start succeeding again. While open, Allow
// admits one probe per Cooldown, so a dead dependency costs one
// request per cooldown instead of a request per item.
//
// The zero value is usable (OpenAfter 5, Cooldown 15s, RecoverAfter 2).
type Breaker struct {
	// OpenAfter is the consecutive-failure count that trips the breaker
	// open. 0 means 5.
	OpenAfter int
	// Cooldown is how long an open breaker waits between admitted
	// probes. 0 means 15s.
	Cooldown time.Duration
	// RecoverAfter is the consecutive-success count that closes a
	// degraded breaker back to ok. 0 means 2.
	RecoverAfter int

	// now is injectable for tests; nil means time.Now.
	now func() time.Time

	mu            sync.Mutex
	state         State
	consecFails   int
	consecOKs     int
	failures      uint64
	successes     uint64
	opens         uint64
	probeDeadline time.Time // open state: next admitted probe
	lastChange    time.Time
}

// BreakerStats is a point-in-time snapshot for /metrics and status
// views.
type BreakerStats struct {
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Failures         uint64 `json:"failures"`
	Successes        uint64 `json:"successes"`
	Opens            uint64 `json:"opens"`
	// SinceChangeSec is seconds since the last state transition.
	SinceChangeSec float64 `json:"since_change_sec"`
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) openAfter() int {
	if b.OpenAfter <= 0 {
		return 5
	}
	return b.OpenAfter
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 15 * time.Second
	}
	return b.Cooldown
}

func (b *Breaker) recoverAfter() int {
	if b.RecoverAfter <= 0 {
		return 2
	}
	return b.RecoverAfter
}

// Allow reports whether an operation should run now. Closed and
// degraded states always admit; an open breaker admits one probe per
// cooldown (the half-open probe) and refuses the rest.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen {
		return true
	}
	now := b.clock()
	if now.Before(b.probeDeadline) {
		return false
	}
	// Admit one probe and push the next admission a cooldown out; if
	// the probe fails the breaker stays open and the deadline holds.
	b.probeDeadline = now.Add(b.cooldown())
	return true
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Success records a successful operation.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.successes++
	b.consecFails = 0
	switch b.state {
	case StateOpen:
		// The half-open probe came back: the dependency breathes, but
		// one success is not health — drop to degraded and let the
		// recovery streak prove it.
		b.transition(StateDegraded)
		b.consecOKs = 1
	case StateDegraded:
		b.consecOKs++
		if b.consecOKs >= b.recoverAfter() {
			b.transition(StateOK)
		}
	}
}

// Failure records a failed operation.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.consecOKs = 0
	b.consecFails++
	if b.state == StateOK {
		b.transition(StateDegraded)
	}
	if b.state == StateDegraded && b.consecFails >= b.openAfter() {
		b.transition(StateOpen)
		b.opens++
		b.probeDeadline = b.clock().Add(b.cooldown())
	}
	// An open breaker holds: the probe deadline Allow set stands.
}

// transition must be called with mu held.
func (b *Breaker) transition(s State) {
	b.state = s
	b.lastChange = b.clock()
}

// Stats snapshots the breaker for scrapes.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{
		State:            b.state.String(),
		ConsecutiveFails: b.consecFails,
		Failures:         b.failures,
		Successes:        b.successes,
		Opens:            b.opens,
	}
	if !b.lastChange.IsZero() {
		st.SinceChangeSec = b.clock().Sub(b.lastChange).Seconds()
	}
	return st
}
