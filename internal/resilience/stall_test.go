package resilience

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestStallWatchFiresOnFrozenCounter(t *testing.T) {
	var fired atomic.Int64
	w := StallWatch{
		Timeout:  50 * time.Millisecond,
		Progress: func() int64 { return 42 },
		OnStall:  func(time.Duration) { fired.Add(1) },
	}
	start := time.Now()
	if !w.Run(context.Background()) {
		t.Fatal("Run returned false without firing")
	}
	if fired.Load() != 1 {
		t.Fatalf("OnStall ran %d times", fired.Load())
	}
	if since := time.Since(start); since < 50*time.Millisecond {
		t.Fatalf("fired after %v, before the timeout", since)
	}
}

func TestStallWatchToleratesProgress(t *testing.T) {
	// A counter that keeps moving for 6 windows must not trip the watch;
	// once it freezes, the watch fires.
	var ctr atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			time.Sleep(20 * time.Millisecond)
			ctr.Add(1)
		}
	}()
	start := time.Now()
	w := StallWatch{
		Timeout:  60 * time.Millisecond,
		Interval: 10 * time.Millisecond,
		Progress: ctr.Load,
		OnStall:  func(time.Duration) {},
	}
	if !w.Run(context.Background()) {
		t.Fatal("watch never fired after the counter froze")
	}
	<-done
	// 6 × 20ms of progress + a 60ms stall window: firing before the
	// progress phase ended would mean progress was ignored.
	if since := time.Since(start); since < 120*time.Millisecond {
		t.Fatalf("fired after %v, during active progress", since)
	}
}

func TestStallWatchStopsWithContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fired := false
	doneCh := make(chan bool, 1)
	go func() {
		doneCh <- StallWatch{
			Timeout:  time.Hour,
			Interval: 10 * time.Millisecond,
			Progress: func() int64 { return 0 },
			OnStall:  func(time.Duration) { fired = true },
		}.Run(ctx)
	}()
	cancel()
	select {
	case got := <-doneCh:
		if got || fired {
			t.Fatal("cancelled watch still fired")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not exit on context cancellation")
	}
}
