package resilience

import (
	"context"
	"time"
)

// StallWatch is a progress watchdog for staged work: it samples a
// monotonic progress counter and reports when the counter stops moving
// for a full timeout window. The counter is the only contract — the
// watched work exposes "how much have I finished" as an int64 (a
// pipeline's done+probed counters, a scanner's byte offset) and the
// watchdog stays ignorant of what the stages are. A stalled stage is a
// liveness failure the breaker/backoff machinery cannot see: the
// operation is neither failing nor finishing, it is stuck holding its
// resources, and something must cut it loose.
type StallWatch struct {
	// Timeout is how long the counter may stand still before the watch
	// declares a stall. Required (> 0).
	Timeout time.Duration
	// Interval is the sampling cadence; 0 means Timeout/4 (clamped to
	// [10ms, Timeout]).
	Interval time.Duration
	// Progress returns the current progress counter. Any change — in
	// either direction — counts as progress. Required.
	Progress func() int64
	// OnStall runs (once) when the counter has not changed for Timeout,
	// with the observed stall duration. Required.
	OnStall func(stalled time.Duration)
}

// Run samples until ctx is done or a stall fires; it returns true when
// OnStall ran. Callers typically run it on its own goroutine with the
// watched operation's context, so a finished operation tears its
// watchdog down with it.
func (w StallWatch) Run(ctx context.Context) bool {
	interval := w.Interval
	if interval <= 0 {
		interval = w.Timeout / 4
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > w.Timeout {
		interval = w.Timeout
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	last := w.Progress()
	lastMove := time.Now()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
		if cur := w.Progress(); cur != last {
			last = cur
			lastMove = time.Now()
			continue
		}
		if stalled := time.Since(lastMove); stalled >= w.Timeout {
			w.OnStall(stalled)
			return true
		}
	}
}
