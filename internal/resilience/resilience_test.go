package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond, Factor: 2, Jitter: JitterNone}
	want := []time.Duration{100, 200, 400, 800, 800, 800}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	b.Jitter = JitterNone
	if got := b.Delay(0); got != 100*time.Millisecond {
		t.Errorf("zero-value Delay(0) = %v, want 100ms", got)
	}
	// The default cap is 30s: attempt 20 would be 100ms·2^20 ≈ 29h.
	if got := b.Delay(20); got != 30*time.Second {
		t.Errorf("zero-value Delay(20) = %v, want 30s", got)
	}
}

func TestBackoffFullJitterRange(t *testing.T) {
	// Full jitter draws uniformly from [0, d]: with a pinned Rand the
	// bounds are exact.
	b := Backoff{Base: time.Second, Factor: 2, Jitter: JitterFull, Rand: func() float64 { return 0 }}
	if got := b.Delay(0); got != 0 {
		t.Errorf("full jitter with rand=0: Delay(0) = %v, want 0", got)
	}
	b.Rand = func() float64 { return 0.5 }
	if got := b.Delay(1); got != time.Second {
		t.Errorf("full jitter with rand=0.5: Delay(1) = %v, want 1s", got)
	}
}

func TestBackoffEqualJitterFloor(t *testing.T) {
	// Equal jitter guarantees at least half the deterministic delay —
	// the floor the DNS client's spacing contract relies on.
	b := Backoff{Base: 200 * time.Millisecond, Factor: 2, Max: time.Minute, Jitter: JitterEqual, Rand: func() float64 { return 0 }}
	if got := b.Delay(0); got != 100*time.Millisecond {
		t.Errorf("equal jitter floor: Delay(0) = %v, want 100ms", got)
	}
	b.Rand = func() float64 { return 0.999999 }
	if got := b.Delay(0); got >= 200*time.Millisecond || got < 199*time.Millisecond {
		t.Errorf("equal jitter ceiling: Delay(0) = %v, want just under 200ms", got)
	}
}

func TestSleepHonoursContext(t *testing.T) {
	b := Backoff{Base: time.Minute, Jitter: JitterNone}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}
}

func TestRetryBudget(t *testing.T) {
	calls := 0
	errBoom := errors.New("boom")
	err := Retry(context.Background(), RetryPolicy{
		Attempts: 4,
		Backoff:  Backoff{Base: time.Microsecond, Jitter: JitterNone},
	}, func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Errorf("Retry error = %v, want %v", err, errBoom)
	}
	if calls != 4 {
		t.Errorf("op ran %d times, want 4", calls)
	}
}

func TestRetrySucceedsMidBudget(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{
		Attempts: 5,
		Backoff:  Backoff{Base: time.Microsecond, Jitter: JitterNone},
	}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Errorf("Retry = %v, want nil", err)
	}
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	errNX := errors.New("nxdomain")
	err := Retry(context.Background(), RetryPolicy{Attempts: 5}, func(context.Context) error {
		calls++
		return Permanent(errNX)
	})
	if !errors.Is(err, errNX) {
		t.Errorf("Retry error = %v, want %v", err, errNX)
	}
	if IsPermanent(err) {
		t.Error("returned error still carries the Permanent marker")
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1 (permanent stops the budget)", calls)
	}
}

func TestRetryStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, RetryPolicy{
		Attempts: 10,
		Backoff:  Backoff{Base: time.Hour, Jitter: JitterNone},
	}, func(context.Context) error {
		calls++
		cancel() // fail once, then the backoff sleep must abort
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Retry error = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1", calls)
	}
}

// fakeClock drives a breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(b *Breaker) (*Breaker, *fakeClock) {
	c := &fakeClock{t: time.Unix(1700000000, 0)}
	b.now = c.now
	return b, c
}

func TestBreakerLifecycle(t *testing.T) {
	b, clock := newTestBreaker(&Breaker{OpenAfter: 3, Cooldown: 10 * time.Second, RecoverAfter: 2})

	if b.State() != StateOK {
		t.Fatalf("initial state = %v, want ok", b.State())
	}
	if !b.Allow() {
		t.Fatal("ok breaker refused an operation")
	}

	// First failure: ok → degraded. Still admitting.
	b.Failure()
	if b.State() != StateDegraded {
		t.Fatalf("after 1 failure: %v, want degraded", b.State())
	}
	if !b.Allow() {
		t.Fatal("degraded breaker refused an operation")
	}

	// Streak reaches OpenAfter: degraded → open.
	b.Failure()
	b.Failure()
	if b.State() != StateOpen {
		t.Fatalf("after 3 failures: %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted inside the cooldown")
	}

	// Cooldown elapses: exactly one probe is admitted.
	clock.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("open breaker refused the half-open probe")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a second probe inside one cooldown")
	}

	// Failed probe holds the open state.
	b.Failure()
	if b.State() != StateOpen {
		t.Fatalf("after failed probe: %v, want open", b.State())
	}

	// A successful probe drops to degraded; RecoverAfter successes
	// close it.
	clock.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("open breaker refused the second probe")
	}
	b.Success()
	if b.State() != StateDegraded {
		t.Fatalf("after successful probe: %v, want degraded", b.State())
	}
	b.Success()
	if b.State() != StateOK {
		t.Fatalf("after recovery streak: %v, want ok", b.State())
	}

	st := b.Stats()
	if st.State != "ok" || st.Opens != 1 || st.Failures != 4 || st.Successes != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBreakerZeroValueDefaults(t *testing.T) {
	b, _ := newTestBreaker(&Breaker{})
	for i := 0; i < 5; i++ {
		b.Failure()
	}
	if b.State() != StateOpen {
		t.Errorf("zero-value breaker after 5 failures = %v, want open", b.State())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(&Breaker{OpenAfter: 3})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() == StateOpen {
		t.Error("interleaved success did not reset the failure streak")
	}
}
