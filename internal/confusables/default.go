package confusables

import (
	_ "embed"
	"strings"
	"sync"

	"repro/internal/ucd"
)

// This file builds the embedded UC dataset. The real confusables.txt is a
// hand-maintained artifact of the Unicode consortium; the reproduction
// ships a synthetic database with the same structural profile (DESIGN.md
// §1): a curated core of real cross-script confusables, per-block quotas
// matching the paper's Table 4 (right column), and a large tail of
// non-IDNA compatibility characters (mathematical alphanumerics, fullwidth
// forms, enclosed letters) that keeps UC∩IDNA a small fraction of UC, as
// in the paper's Figure 3.

// latinSeeds lists known-real confusable sources per Latin lowercase
// target. These overlap the font's curated twins, giving the nonempty
// SimChar∩UC intersection of Table 1.
var latinSeeds = map[rune][]rune{
	'a': {0x0430, 0x03B1, 0x0251},
	'b': {0x0184, 0x042C, 0x15AF},
	'c': {0x0441, 0x03F2, 0x1D04},
	'd': {0x0501, 0x13E7, 0x146F},
	'e': {0x0435, 0x04BD, 0x212F},
	'f': {0x017F, 0x0584, 0x1E9D},
	'g': {0x0261, 0x0581, 0x1D83},
	'h': {0x04BB, 0x0570, 0x13C2},
	'i': {0x0456, 0x03B9, 0x0269},
	'j': {0x0458, 0x03F3},
	'l': {0x04CF, 0x0627, 0x05D5},
	'n': {0x0578, 0x057C},
	'o': {0x043E, 0x03BF, 0x0585, 0x0ED0, 0x0966, 0x09E6, 0x0AE6, 0x0B66,
		0x0BE6, 0x0C66, 0x0CE6, 0x0D66, 0x0E50, 0x17E0, 0x0F20, 0x07C0,
		0x101D, 0x0647, 0x06D5, 0x0D20},
	'p': {0x0440, 0x03C1, 0x2374},
	'q': {0x051B, 0x0563, 0x0566},
	'r': {0x0433, 0x1D26, 0xAB47},
	's': {0x0455, 0x01BD, 0xA731},
	'u': {0x057D, 0x03C5, 0x1D1C},
	'v': {0x03BD, 0x0475, 0x05D8},
	'w': {0x051D, 0x0461, 0x0561, 0x03C9},
	'x': {0x0445, 0x04B3, 0x157D},
	'y': {0x0443, 0x04AF, 0x10E7},
	'z': {0x1D22, 0x0240},
}

// latinQuota is the paper's Table 3 (UC ∩ IDNA): homoglyph count per
// Latin lowercase letter, 141 total.
var latinQuota = map[rune]int{
	'o': 34, 'l': 12, 'y': 10, 'i': 9, 'u': 9, 'w': 8, 'v': 6,
	's': 5, 'r': 5, 'c': 4, 'd': 4, 'g': 4, 'f': 4,
	'a': 3, 'b': 3, 'e': 3, 'h': 3, 'q': 3, 'p': 3, 'x': 3,
	'j': 2, 'n': 2, 'z': 2,
}

// donorRanges supply additional PVALID sources when a letter's seed list
// is shorter than its quota: small-caps and phonetic letters, archaic
// Cyrillic, Latin Extended-D, Coptic, Glagolitic, Cherokee small letters.
var donorRanges = [][2]rune{
	{0x1D00, 0x1D7F}, // Phonetic Extensions
	{0xA641, 0xA66D}, // Cyrillic Extended-B (lowercase odd)
	{0xA723, 0xA78B}, // Latin Extended-D
	{0x2C81, 0x2CB1}, // Coptic
	{0x2C30, 0x2C5E}, // Glagolitic
	{0xAB70, 0xABBF}, // Cherokee Supplement
	{0x1E01, 0x1EFF}, // Latin Extended Additional (odd lowercase)
}

// blockQuota drives the within-block confusable quotas of Table 4 (right):
// CJK 91, Combining Diacritical Marks 56, Arabic 52, Cyrillic 40 (26 here
// plus ~14 Latin-targeted seeds above), Thai 36, everything else lower.
var blockQuota = []struct {
	lo, hi rune
	n      int
	stride rune // scan stride; larger strides spread sources over the block
}{
	{0x4E01, 0x9FFF, 91, 229}, // CJK: source → source-1
	{0x0300, 0x036F, 56, 2},   // CDM: marks confusable with each other
	{0x0620, 0x06D3, 52, 3},   // Arabic
	{0x0460, 0x04FF, 26, 3},   // archaic Cyrillic
	{0x0E01, 0x0E4E, 36, 1},   // Thai
	{0x1401, 0x167F, 30, 17},  // Canadian Aboriginal syllabics
	{0x0561, 0x0586, 20, 1},   // Armenian
	{0x0E81, 0x0EC4, 20, 2},   // Lao
	{0x0905, 0x0939, 20, 2},   // Devanagari
	{0x05D0, 0x05EA, 18, 1},   // Hebrew
	{0x0995, 0x09B9, 16, 2},   // Bengali
	{0xA501, 0xA63F, 15, 9},   // Vai
	{0x03B1, 0x03C9, 15, 1},   // Greek
	{0x1200, 0x12BF, 14, 7},   // Ethiopic
	{0x10D0, 0x10FA, 12, 2},   // Georgian
	{0x1000, 0x102A, 10, 3},   // Myanmar
}

// SyntheticUnicodeVersion is the Unicode version the synthetic dataset is
// pinned against: the IsPValid/block tables in internal/ucd and the
// curated seed lists were written from this version's data files, and the
// generator CLI stamps it into the committed table so a data refresh is a
// reviewable diff.
const SyntheticUnicodeVersion = "16.0.0"

// BuildSynthetic assembles the synthetic confusables database from the
// curated seeds and quota tables in this file. It is the generator the
// confusablesgen CLI runs; normal callers use Default(), which parses the
// committed generated form (the two are pinned equal by test).
func BuildSynthetic() *DB {
	db := New()
	addLatinTargeted(db)
	addBlockQuotas(db)
	addCompatibilityTail(db)
	addManyToOne(db)
	db.SetProvenance(SyntheticUnicodeVersion, "")
	return db
}

func addLatinTargeted(db *DB) {
	// Deterministic donor stream for quota filling.
	var donors []rune
	for _, dr := range donorRanges {
		for cp := dr[0]; cp <= dr[1]; cp += 2 {
			if ucd.IsPValid(cp) {
				donors = append(donors, cp)
			}
		}
	}
	di := 0
	for letter := rune('a'); letter <= 'z'; letter++ {
		quota := latinQuota[letter]
		if quota == 0 {
			continue
		}
		added := 0
		for _, src := range latinSeeds[letter] {
			if added >= quota {
				break
			}
			if !ucd.IsPValid(src) {
				continue
			}
			if _, dup := db.Lookup(src); dup {
				continue
			}
			db.Add(src, []rune{letter}, "")
			added++
		}
		for added < quota && di < len(donors) {
			src := donors[di]
			di++
			if _, dup := db.Lookup(src); dup {
				continue
			}
			db.Add(src, []rune{letter}, "")
			added++
		}
	}
}

func addBlockQuotas(db *DB) {
	for _, q := range blockQuota {
		added := 0
		var prevValid rune
		for cp := q.lo; cp <= q.hi && added < q.n; cp += q.stride {
			if !ucd.IsPValid(cp) {
				continue
			}
			if _, dup := db.Lookup(cp); dup {
				continue
			}
			target := prevValid
			if target == 0 {
				// First source of the block maps to the block start,
				// keeping the entry within-block.
				target = q.lo - 1
				if !ucd.IsPValid(target) {
					target = cp - 1
				}
			}
			db.Add(cp, []rune{target}, "")
			prevValid = cp
			added++
		}
	}
}

// addCompatibilityTail adds the large non-IDNA portion of UC: styled and
// compatibility characters that normalize or are visually identical to
// plain letters, none of which are PVALID.
func addCompatibilityTail(db *DB) {
	// Mathematical alphanumeric symbols: 13 styles of A-Z a-z.
	for style := 0; style < 13; style++ {
		base := rune(0x1D400 + 52*style)
		for k := 0; k < 26; k++ {
			db.Add(base+rune(k), []rune{'A' + rune(k)}, "")
			db.Add(base+26+rune(k), []rune{'a' + rune(k)}, "")
		}
	}
	// Mathematical digits (bold through monospace).
	for style := 0; style < 5; style++ {
		base := rune(0x1D7CE + 10*style)
		for k := 0; k < 10; k++ {
			db.Add(base+rune(k), []rune{'0' + rune(k)}, "")
		}
	}
	// Fullwidth Latin.
	for k := rune(0); k < 26; k++ {
		db.Add(0xFF21+k, []rune{'A' + k}, "")
		db.Add(0xFF41+k, []rune{'a' + k}, "")
	}
	// Circled letters and digits.
	for k := rune(0); k < 26; k++ {
		db.Add(0x24B6+k, []rune{'A' + k}, "")
		db.Add(0x24D0+k, []rune{'a' + k}, "")
	}
	for k := rune(0); k < 9; k++ {
		db.Add(0x2460+k, []rune{'1' + k}, "")
	}
	// Roman numerals.
	romans := []struct {
		src rune
		t   string
	}{
		{0x2160, "I"}, {0x2161, "II"}, {0x2162, "III"}, {0x2163, "IV"},
		{0x2164, "V"}, {0x2165, "VI"}, {0x2169, "X"}, {0x216C, "L"},
		{0x216D, "C"}, {0x216E, "D"}, {0x216F, "M"},
		{0x2170, "i"}, {0x2171, "ii"}, {0x2174, "v"}, {0x2179, "x"},
		{0x217C, "l"}, {0x217D, "c"}, {0x217E, "d"}, {0x217F, "m"},
	}
	for _, rn := range romans {
		db.Add(rn.src, []rune(rn.t), "")
	}
	// Letterlike symbols.
	letterlike := map[rune]rune{
		0x2102: 'C', 0x210A: 'g', 0x210B: 'H', 0x210C: 'H', 0x210D: 'H',
		0x210E: 'h', 0x2110: 'I', 0x2111: 'I', 0x2112: 'L', 0x2113: 'l',
		0x2115: 'N', 0x2118: 'P', 0x2119: 'P', 0x211A: 'Q', 0x211B: 'R',
		0x211C: 'R', 0x211D: 'R', 0x2124: 'Z', 0x2128: 'Z', 0x212C: 'B',
		0x212D: 'C', 0x212F: 'e', 0x2130: 'E', 0x2131: 'F', 0x2133: 'M',
		0x2134: 'o', 0x2139: 'i', 0x213C: 'p', 0x2146: 'd', 0x2147: 'e',
		0x2148: 'i', 0x2149: 'j',
	}
	for src, t := range letterlike {
		db.Add(src, []rune{t}, "")
	}
	// Uppercase Cyrillic and Greek lookalikes of Latin capitals.
	caps := map[rune]rune{
		0x0410: 'A', 0x0412: 'B', 0x0415: 'E', 0x041A: 'K', 0x041C: 'M',
		0x041D: 'H', 0x041E: 'O', 0x0420: 'P', 0x0421: 'C', 0x0422: 'T',
		0x0425: 'X', 0x0405: 'S', 0x0406: 'I', 0x0408: 'J',
		0x0391: 'A', 0x0392: 'B', 0x0395: 'E', 0x0396: 'Z', 0x0397: 'H',
		0x0399: 'I', 0x039A: 'K', 0x039C: 'M', 0x039D: 'N', 0x039F: 'O',
		0x03A1: 'P', 0x03A4: 'T', 0x03A5: 'Y', 0x03A7: 'X',
	}
	for src, t := range caps {
		db.Add(src, []rune{t}, "")
	}
	// CJK compatibility ideographs → unified ideographs.
	for k := rune(0); k <= 0x16D; k++ {
		target := rune(0x4E00 + (int(k)*37)%20992)
		db.Add(0xF900+k, []rune{target}, "")
	}
	// Halfwidth Katakana → Katakana.
	for k := rune(0); k < 56; k++ {
		db.Add(0xFF66+k, []rune{0x30A1 + k}, "")
	}
	// Dash and circle lookalikes.
	db.Add(0x2010, []rune{'-'}, "")
	db.Add(0x2011, []rune{'-'}, "")
	db.Add(0x2012, []rune{'-'}, "")
	db.Add(0x2013, []rune{'-'}, "")
	db.Add(0x2212, []rune{'-'}, "")
	db.Add(0x25CB, []rune{'o'}, "")
	db.Add(0x25E6, []rune{'o'}, "")
	db.Add(0x3007, []rune{'o'}, "") // ideographic zero (PVALID exception)
}

// addManyToOne adds the many-to-one confusables of the real TR39 table:
// sequences of narrow letters that render as one wide letter ("rn" ≈ "m",
// "vv" ≈ "w", "cl" ≈ "d") and the typographic ligatures ("ﬃ" ≈ "ffi").
// These entries have multi-rune prototypes, so the pairwise model cannot
// represent them at all — only whole-label skeleton comparison catches a
// label built from them ("rnicrosoft").
func addManyToOne(db *DB) {
	db.Add('m', []rune("rn"), "")
	db.Add('w', []rune("vv"), "")
	db.Add('d', []rune("cl"), "")
	db.Add(0xFB00, []rune("ff"), "")  // ﬀ
	db.Add(0xFB01, []rune("fi"), "")  // ﬁ
	db.Add(0xFB02, []rune("fl"), "")  // ﬂ
	db.Add(0xFB03, []rune("ffi"), "") // ﬃ
	db.Add(0xFB04, []rune("ffl"), "") // ﬄ
}

// embeddedData is the committed generated form of the synthetic dataset,
// produced by cmd/confusablesgen. Default() parses it rather than calling
// BuildSynthetic so the table every binary detects with is exactly the
// reviewed bytes in the repository.
//
//go:embed confusables_data.txt
var embeddedData string

var (
	defaultOnce sync.Once
	defaultDB   *DB
)

// Default returns the embedded UC database, built once. Callers must treat
// it as read-only.
func Default() *DB {
	defaultOnce.Do(func() {
		db, err := Parse(strings.NewReader(embeddedData))
		if err != nil {
			// The embedded table is generated and diff-gated in CI; a
			// parse failure means a corrupted build, not bad input.
			panic("confusables: embedded table: " + err.Error())
		}
		defaultDB = db
	})
	return defaultDB
}
