package confusables

import (
	"bytes"
	"strings"
	"testing"
)

// The bug this PR closes: SkeletonRune truncated multi-rune prototypes to
// their first rune. SkeletonAppend must return the complete sequence.
func TestSkeletonAppendMultiRune(t *testing.T) {
	db := New()
	db.Add(0xFB03, []rune("ffi"), "") // ﬃ
	db.Add('m', []rune("rn"), "")

	if got := string(db.SkeletonAppend(nil, 0xFB03)); got != "ffi" {
		t.Errorf("SkeletonAppend(ﬃ) = %q, want %q", got, "ffi")
	}
	if got := string(db.SkeletonAppend(nil, 'm')); got != "rn" {
		t.Errorf("SkeletonAppend(m) = %q, want %q", got, "rn")
	}
	// The deprecated API keeps its historical truncating behavior.
	if got := db.SkeletonRune(0xFB03); got != 'f' {
		t.Errorf("SkeletonRune(ﬃ) = %q, want 'f' (deprecated first-rune behavior)", got)
	}
	// A rune with no entry appends itself.
	if got := string(db.SkeletonAppend(nil, 'q')); got != "q" {
		t.Errorf("SkeletonAppend(q) = %q", got)
	}
}

// Each rune of a multi-rune target is itself resolved, so chained
// expansions reach the fixed point.
func TestSkeletonAppendRecursive(t *testing.T) {
	db := New()
	db.Add('m', []rune("rn"), "")
	db.Add('r', []rune{0x0433}, "") // contrived: r itself maps on
	if got := string(db.SkeletonAppend(nil, 'm')); got != "гn" {
		t.Errorf("SkeletonAppend(m) = %q, want %q", got, "гn")
	}
	// Single-rune chains agree with the deprecated API.
	db2 := New()
	db2.Add('x', []rune{'y'}, "")
	db2.Add('y', []rune{'z'}, "")
	if got := string(db2.SkeletonAppend(nil, 'x')); got != "z" {
		t.Errorf("chain SkeletonAppend(x) = %q, want z", got)
	}
	// Cycles terminate.
	db2.Add('z', []rune{'x'}, "")
	_ = db2.SkeletonAppend(nil, 'x')
}

func TestSkeletonWholeString(t *testing.T) {
	db := New()
	db.Add('m', []rune("rn"), "")
	db.Add('w', []rune("vv"), "")
	db.Add('d', []rune("cl"), "")
	db.Add(0x0430, []rune{'a'}, "")

	cases := []struct{ in, want string }{
		{"rnicrosoft", "rnicrosoft"},  // already skeleton form
		{"microsoft", "rnicrosoft"},   // m expands
		{"vvikipedia", "vvikipeclia"}, // the 'd' expands too
		{"wikipedia", "vvikipeclia"},
		{"dose", "close"},
		{"close", "close"},
		{"fаcebook", "facebook"},
	}
	for _, c := range cases {
		if got := db.Skeleton(c.in); got != c.want {
			t.Errorf("Skeleton(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// The many-to-one confusion is exactly skeleton equality.
	if db.Skeleton("rnicrosoft") != db.Skeleton("microsoft") {
		t.Error("skeleton(rnicrosoft) must equal skeleton(microsoft)")
	}
}

// Confusable compares full sequences: a multi-rune-prototype rune is NOT
// pairwise-confusable with the first rune of its prototype (that would
// make ASCII 'm' ~ ASCII 'r', breaking posting-backend soundness).
func TestConfusableFullSequence(t *testing.T) {
	db := New()
	db.Add('m', []rune("rn"), "")
	db.Add(0x051C, []rune{'w'}, "")
	db.Add('w', []rune("vv"), "")
	if db.Confusable('m', 'r') {
		t.Error("m ~ r must be false (full-sequence comparison)")
	}
	// Both expand to "vv", so the pair survives 'w' gaining a sequence.
	if !db.Confusable(0x051C, 'w') {
		t.Error("Ԝ ~ w must hold: both skeletons are \"vv\"")
	}
	if db.Confusable('w', 'v') {
		t.Error("w ~ v must be false")
	}
}

func TestSkeletonHangulNFD(t *testing.T) {
	db := New()
	// 가 (U+AC00) decomposes to U+1100 U+1161.
	if got := db.Skeleton("가"); got != "가" {
		t.Errorf("Skeleton(가) = %+q, want %+q", got, "가")
	}
	// 각 (U+AC01) has a trailing jamo.
	if got := db.Skeleton("각"); got != "각" {
		t.Errorf("Skeleton(각) = %+q", got)
	}
}

func TestCanonicalRuneStopsBeforeSequences(t *testing.T) {
	db := New()
	db.Add(0x051C, []rune{'w'}, "")
	db.Add('w', []rune("vv"), "")
	db.Add('x', []rune{'y'}, "")
	db.Add('y', []rune{'z'}, "")
	if got := db.CanonicalRune(0x051C); got != 'w' {
		t.Errorf("CanonicalRune(Ԝ) = %q, want w", got)
	}
	if got := db.CanonicalRune('x'); got != 'z' {
		t.Errorf("CanonicalRune(x) = %q, want z", got)
	}
	if got := db.CanonicalRune('w'); got != 'w' {
		t.Errorf("CanonicalRune(w) = %q, want w (no one-rune original)", got)
	}
}

// The committed generated file must be exactly what the generator emits
// for the same provenance — the in-process form of CI's regenerate-and-
// diff gate — and Default() must agree with BuildSynthetic().
func TestGeneratedFileMatchesGenerator(t *testing.T) {
	def := Default()
	if def.UnicodeVersion() == "" || def.GeneratedAt() == "" {
		t.Fatalf("embedded table missing provenance: version=%q generatedAt=%q",
			def.UnicodeVersion(), def.GeneratedAt())
	}
	var buf bytes.Buffer
	if err := WriteGenerated(&buf, def.UnicodeVersion(), def.GeneratedAt()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != embeddedData {
		t.Fatal("embedded confusables_data.txt is stale: rerun `go run ./cmd/confusablesgen`")
	}

	built := BuildSynthetic()
	if built.Len() != def.Len() {
		t.Fatalf("BuildSynthetic has %d entries, embedded table %d", built.Len(), def.Len())
	}
	be, de := built.Entries(), def.Entries()
	for i := range be {
		if be[i].Source != de[i].Source || string(be[i].Target) != string(de[i].Target) {
			t.Fatalf("entry %d differs: built %#U→%q, embedded %#U→%q",
				i, be[i].Source, string(be[i].Target), de[i].Source, string(de[i].Target))
		}
	}
}

func TestDefaultManyToOne(t *testing.T) {
	db := Default()
	cases := []struct {
		src  rune
		want string
	}{
		{'m', "rn"}, {'w', "vv"}, {'d', "cl"}, {0xFB03, "ffi"},
	}
	for _, c := range cases {
		if got, ok := db.Lookup(c.src); !ok || string(got) != c.want {
			t.Errorf("Lookup(%#U) = %q, %v; want %q", c.src, string(got), ok, c.want)
		}
	}
	if db.Skeleton("rnicrosoft") != db.Skeleton("microsoft") {
		t.Error("default DB: skeleton(rnicrosoft) != skeleton(microsoft)")
	}
}

func TestProvenanceRoundTrip(t *testing.T) {
	db := New()
	db.Add(0x0430, []rune{'a'}, "")
	db.SetProvenance("16.0.0", "2026-08-08T00:00:00Z")
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.UnicodeVersion() != "16.0.0" || back.GeneratedAt() != "2026-08-08T00:00:00Z" {
		t.Fatalf("provenance lost: %q %q", back.UnicodeVersion(), back.GeneratedAt())
	}
}
