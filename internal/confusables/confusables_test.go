package confusables

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ucd"
)

func TestParseFormat(t *testing.T) {
	const sample = `# confusables.txt sample
0430 ;	0061 ;	MA	# ( а → a ) CYRILLIC SMALL LETTER A
05D5 05D5 ; 0077 ; MA # double vav → w would be a sequence source (rejected below)
`
	// The sequence-source line must cause an error.
	if _, err := Parse(strings.NewReader(sample)); err == nil {
		t.Fatal("multi-codepoint source should be rejected")
	}
	db, err := Parse(strings.NewReader("0430 ;\t0061 ;\tMA\t# comment\n\n# only comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tgt, ok := db.Lookup(0x0430); !ok || len(tgt) != 1 || tgt[0] != 'a' {
		t.Fatalf("Lookup(а) = %v, %v", tgt, ok)
	}
}

func TestParseMultiRuneTarget(t *testing.T) {
	db, err := Parse(strings.NewReader("2163 ; 0049 0056 ; MA\n"))
	if err != nil {
		t.Fatal(err)
	}
	tgt, ok := db.Lookup(0x2163)
	if !ok || string(tgt) != "IV" {
		t.Fatalf("target = %q", string(tgt))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"0430\n",          // missing separator
		"ZZZZ ; 0061 ;\n", // bad hex
		"0430 ; ZZ ;\n",   // bad target hex
		"0430 ;  ;\n",     // empty target
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	db := New()
	db.Add(0x0430, []rune{'a'}, "cyrillic a")
	db.Add(0x2163, []rune("IV"), "")
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round-trip len %d != %d", back.Len(), db.Len())
	}
	if tgt, _ := back.Lookup(0x2163); string(tgt) != "IV" {
		t.Fatalf("round-trip target %q", string(tgt))
	}
}

func TestConfusableAndSkeleton(t *testing.T) {
	db := New()
	db.Add(0x0430, []rune{'a'}, "")
	db.Add(0x03B1, []rune{'a'}, "")
	db.Add(0x0435, []rune{'e'}, "")
	if !db.Confusable(0x0430, 'a') || !db.Confusable('a', 0x0430) {
		t.Fatal("а/a must be confusable both ways")
	}
	if !db.Confusable(0x0430, 0x03B1) {
		t.Fatal("а/α share skeleton 'a'")
	}
	if db.Confusable(0x0430, 'e') || db.Confusable('x', 'y') {
		t.Fatal("non-confusables misreported")
	}
	if !db.Confusable('q', 'q') {
		t.Fatal("identity must be confusable")
	}
	if got := db.Skeleton("fаcеbook"); got != "facebook" {
		t.Fatalf("Skeleton = %q", got)
	}
}

func TestSkeletonChainsAndCycles(t *testing.T) {
	db := New()
	db.Add('x', []rune{'y'}, "")
	db.Add('y', []rune{'z'}, "")
	if db.SkeletonRune('x') != 'z' {
		t.Fatal("chains must resolve transitively")
	}
	// A cycle must terminate.
	db.Add('z', []rune{'x'}, "")
	_ = db.SkeletonRune('x') // must not hang
}

func TestRestrictSources(t *testing.T) {
	db := New()
	db.Add(0x0430, []rune{'a'}, "") // PVALID source
	db.Add(0xFF41, []rune{'a'}, "") // fullwidth a: not PVALID
	restricted := db.RestrictSources(ucd.IDNASet())
	if restricted.Len() != 1 {
		t.Fatalf("restricted len = %d, want 1", restricted.Len())
	}
	if _, ok := restricted.Lookup(0xFF41); ok {
		t.Fatal("non-PVALID source must be dropped")
	}
}

func TestDefaultProfile(t *testing.T) {
	db := Default()
	// Total sources: the synthetic UC is ~2.5k sources (paper: 6,296
	// pairs); what matters is the IDNA split below.
	if db.Len() < 1500 || db.Len() > 6000 {
		t.Fatalf("default UC len = %d, want 1.5k-6k", db.Len())
	}
	idna := ucd.IDNASet()
	inIDNA := db.RestrictSources(idna)
	frac := float64(inIDNA.Len()) / float64(db.Len())
	if frac > 0.5 {
		t.Fatalf("UC∩IDNA fraction = %.2f, want < 0.5 (most of UC outside IDNA)", frac)
	}
	if inIDNA.Len() < 300 || inIDNA.Len() > 1500 {
		t.Fatalf("UC∩IDNA sources = %d, want 300-1500 (paper: 980 chars)", inIDNA.Len())
	}
}

func TestDefaultLatinQuotas(t *testing.T) {
	db := Default().RestrictSources(ucd.IDNASet())
	counts := map[rune]int{}
	for _, src := range db.Sources() {
		if tgt, _ := db.Lookup(src); len(tgt) == 1 && tgt[0] >= 'a' && tgt[0] <= 'z' {
			counts[tgt[0]]++
		}
	}
	// 'o' must dominate, as in Table 3.
	for letter, want := range latinQuota {
		if counts[letter] < want-1 { // donor exhaustion tolerance
			t.Errorf("letter %q has %d UC homoglyphs, want ≈%d", letter, counts[letter], want)
		}
	}
	if counts['o'] <= counts['l'] || counts['o'] <= counts['e'] {
		t.Errorf("'o' must have the most homoglyphs: o=%d l=%d e=%d",
			counts['o'], counts['l'], counts['e'])
	}
}

func TestDefaultBlockProfile(t *testing.T) {
	db := Default().RestrictSources(ucd.IDNASet())
	blockCounts := map[string]int{}
	for _, src := range db.Sources() {
		blockCounts[ucd.BlockOf(src)]++
	}
	// Table 4 right column ordering: CJK > CDM > Arabic > Cyrillic > Thai.
	cjk := blockCounts["CJK Unified Ideographs"]
	cdm := blockCounts["Combining Diacritical Marks"]
	arabic := blockCounts["Arabic"]
	thai := blockCounts["Thai"]
	if cjk < 80 {
		t.Errorf("CJK sources = %d, want ≈91", cjk)
	}
	if cdm < 50 {
		t.Errorf("CDM sources = %d, want ≈56", cdm)
	}
	if arabic < 40 {
		t.Errorf("Arabic sources = %d, want ≈52", arabic)
	}
	if thai < 30 {
		t.Errorf("Thai sources = %d, want ≈36", thai)
	}
	if !(cjk > cdm && cdm > arabic && arabic > thai) {
		t.Errorf("block ordering wrong: CJK=%d CDM=%d Arabic=%d Thai=%d", cjk, cdm, arabic, thai)
	}
}

func TestDefaultKnownConfusables(t *testing.T) {
	db := Default()
	known := []struct {
		src rune
		tgt rune
	}{
		{0x0430, 'a'}, // Cyrillic а
		{0x043E, 'o'}, // Cyrillic о
		{0x0585, 'o'}, // Armenian օ
		{0x0ED0, 'o'}, // Lao zero (Figure 12)
		{0x10E7, 'y'}, // Georgian qar (Figure 11)
		{0xFF41, 'a'}, // fullwidth a
	}
	for _, k := range known {
		tgt, ok := db.Lookup(k.src)
		if !ok || len(tgt) == 0 || tgt[0] != k.tgt {
			t.Errorf("Lookup(%#U) = %q, %v; want %q", k.src, string(tgt), ok, k.tgt)
		}
	}
}

func TestCharsAndPairs(t *testing.T) {
	db := New()
	db.Add('x', []rune{'a'}, "")
	db.Add('y', []rune{'a'}, "")
	if db.Pairs() != 2 {
		t.Fatalf("Pairs = %d", db.Pairs())
	}
	chars := db.Chars()
	if chars.Len() != 3 { // x, y, a
		t.Fatalf("Chars = %d, want 3", chars.Len())
	}
}

func TestDefaultIsCached(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must be cached")
	}
}
