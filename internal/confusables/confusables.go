// Package confusables implements the Unicode TR39 confusables database
// ("UC" in the paper): the file format of confusables.txt, a lookup
// structure mapping characters to their confusability skeletons, and the
// embedded dataset this reproduction ships in place of the Unicode
// consortium's manually maintained file.
package confusables

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ucd"
)

// Entry is one confusable mapping: Source is visually confusable with the
// Target sequence. TR39 calls Target the "skeleton" prototype.
type Entry struct {
	Source  rune
	Target  []rune
	Comment string
}

// DB is a parsed confusables database.
type DB struct {
	entries map[rune][]rune
	comment map[rune]string
}

// New returns an empty database.
func New() *DB {
	return &DB{entries: make(map[rune][]rune), comment: make(map[rune]string)}
}

// Add inserts a mapping from source to target sequence.
func (db *DB) Add(source rune, target []rune, comment string) {
	cp := make([]rune, len(target))
	copy(cp, target)
	db.entries[source] = cp
	if comment != "" {
		db.comment[source] = comment
	}
}

// Lookup returns the skeleton target for source, if listed.
func (db *DB) Lookup(source rune) ([]rune, bool) {
	t, ok := db.entries[source]
	return t, ok
}

// Confusable reports whether a and b share a skeleton: either one maps to
// the other, or both map to the same prototype. This is the pair test the
// detection algorithm uses ("r[i] and x[i] are listed as a pair").
func (db *DB) Confusable(a, b rune) bool {
	if a == b {
		return true
	}
	sa := db.SkeletonRune(a)
	sb := db.SkeletonRune(b)
	return sa == sb
}

// SkeletonRune resolves a single code point to its prototype, following
// chains (bounded, to tolerate accidental cycles in hand-edited files).
// Multi-rune targets resolve to the first rune, which suffices for the
// per-character comparisons of Algorithm 1.
func (db *DB) SkeletonRune(r rune) rune {
	cur := r
	for depth := 0; depth < 8; depth++ {
		t, ok := db.entries[cur]
		if !ok || len(t) == 0 {
			return cur
		}
		if len(t) == 1 && t[0] == cur {
			return cur
		}
		cur = t[0]
	}
	return cur
}

// Skeleton maps every rune of s to its prototype, TR39's skeleton(X)
// operation restricted to single-rune targets.
func (db *DB) Skeleton(s string) string {
	var sb strings.Builder
	for _, r := range s {
		sb.WriteRune(db.SkeletonRune(r))
	}
	return sb.String()
}

// Sources returns all source code points in ascending order.
func (db *DB) Sources() []rune {
	out := make([]rune, 0, len(db.entries))
	for r := range db.entries {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of source entries.
func (db *DB) Len() int { return len(db.entries) }

// Entries returns every mapping, sources ascending — the canonical
// iteration the snapshot codec serializes. Target slices are copies.
func (db *DB) Entries() []Entry {
	out := make([]Entry, 0, len(db.entries))
	for _, src := range db.Sources() {
		tgt := db.entries[src]
		cp := make([]rune, len(tgt))
		copy(cp, tgt)
		out = append(out, Entry{Source: src, Target: cp, Comment: db.comment[src]})
	}
	return out
}

// Chars returns the set of all code points mentioned (sources and targets),
// the paper's "number of characters" accounting for Table 1.
func (db *DB) Chars() *ucd.RuneSet {
	s := ucd.NewRuneSet()
	for src, tgt := range db.entries {
		s.Add(src)
		for _, t := range tgt {
			s.Add(t)
		}
	}
	return s
}

// Pairs returns the number of (source, prototype) homoglyph pairs.
func (db *DB) Pairs() int { return len(db.entries) }

// RestrictSources returns a new DB keeping only entries whose source is in
// keep — e.g. UC ∩ IDNA, the paper's Figure 3 intersection.
func (db *DB) RestrictSources(keep *ucd.RuneSet) *DB {
	out := New()
	for src, tgt := range db.entries {
		if keep.Contains(src) {
			out.Add(src, tgt, db.comment[src])
		}
	}
	return out
}

// Parse reads the TR39 confusables.txt format:
//
//	0430 ;	0061 ;	MA	# ( а → a ) CYRILLIC SMALL LETTER A → LATIN SMALL LETTER A
//
// Lines may be prefixed with a BOM, blank, or comment-only.
func Parse(r io.Reader) (*DB, error) {
	db := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimPrefix(sc.Text(), "\uFEFF")
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, ";")
		if len(fields) < 2 {
			return nil, fmt.Errorf("confusables: line %d: want 'source ; target [; type]'", lineNo)
		}
		src, err := parseHexSeq(fields[0])
		if err != nil {
			return nil, fmt.Errorf("confusables: line %d: source: %v", lineNo, err)
		}
		if len(src) != 1 {
			// TR39 sources are single code points; sequences appear only in
			// the (obsolete) SL/ML tables which we reject gracefully.
			return nil, fmt.Errorf("confusables: line %d: multi-codepoint source unsupported", lineNo)
		}
		tgt, err := parseHexSeq(fields[1])
		if err != nil {
			return nil, fmt.Errorf("confusables: line %d: target: %v", lineNo, err)
		}
		if len(tgt) == 0 {
			return nil, fmt.Errorf("confusables: line %d: empty target", lineNo)
		}
		db.Add(src[0], tgt, "")
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("confusables: %w", err)
	}
	return db, nil
}

func parseHexSeq(s string) ([]rune, error) {
	var out []rune
	for _, tok := range strings.Fields(strings.TrimSpace(s)) {
		v, err := strconv.ParseUint(tok, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("bad code point %q", tok)
		}
		out = append(out, rune(v))
	}
	return out, nil
}

// Write serializes the database in confusables.txt format, sources
// ascending, using the MA (mixed-script any-case) class throughout.
func (db *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# confusables.txt — synthetic UC database (ShamFinder reproduction)"); err != nil {
		return err
	}
	for _, src := range db.Sources() {
		tgt := db.entries[src]
		parts := make([]string, len(tgt))
		for i, t := range tgt {
			parts[i] = fmt.Sprintf("%04X", t)
		}
		comment := db.comment[src]
		if comment == "" {
			comment = fmt.Sprintf("( %c → %s )", src, string(tgt))
		}
		if _, err := fmt.Fprintf(bw, "%04X ;\t%s ;\tMA\t# %s\n", src, strings.Join(parts, " "), comment); err != nil {
			return err
		}
	}
	return bw.Flush()
}
