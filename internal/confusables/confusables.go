// Package confusables implements the Unicode TR39 confusables database
// ("UC" in the paper): the file format of confusables.txt, a lookup
// structure mapping characters to their confusability skeletons, and the
// embedded dataset this reproduction ships in place of the Unicode
// consortium's manually maintained file.
package confusables

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ucd"
)

// Entry is one confusable mapping: Source is visually confusable with the
// Target sequence. TR39 calls Target the "skeleton" prototype.
type Entry struct {
	Source  rune
	Target  []rune
	Comment string
}

// DB is a parsed confusables database.
type DB struct {
	entries map[rune][]rune
	comment map[rune]string

	// Provenance: the pinned Unicode version the table was generated
	// against and the generation timestamp, carried through Parse/Write
	// so regenerating the committed data file is a reviewable diff.
	unicodeVersion string
	generatedAt    string
}

// New returns an empty database.
func New() *DB {
	return &DB{entries: make(map[rune][]rune), comment: make(map[rune]string)}
}

// Add inserts a mapping from source to target sequence.
func (db *DB) Add(source rune, target []rune, comment string) {
	cp := make([]rune, len(target))
	copy(cp, target)
	db.entries[source] = cp
	if comment != "" {
		db.comment[source] = comment
	}
}

// Lookup returns the skeleton target for source, if listed.
func (db *DB) Lookup(source rune) ([]rune, bool) {
	t, ok := db.entries[source]
	return t, ok
}

// Confusable reports whether a and b share a skeleton: either one maps to
// the other, or both map to the same prototype sequence. This is the pair
// test the detection algorithm uses ("r[i] and x[i] are listed as a
// pair"). The comparison is over the FULL prototype sequences, so a rune
// whose prototype is multi-rune ('m' → "rn") is never pairwise-confusable
// with the first rune of that sequence — such pairs are the many-to-one
// class only whole-label skeleton comparison can catch.
func (db *DB) Confusable(a, b rune) bool {
	if a == b {
		return true
	}
	var bufA, bufB [16]rune
	sa := db.SkeletonAppend(bufA[:0], a)
	sb := db.SkeletonAppend(bufB[:0], b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// SkeletonRune resolves a single code point to the first rune of its
// prototype, following chains (bounded, to tolerate accidental cycles in
// hand-edited files).
//
// Deprecated: a multi-rune prototype ("ﬃ" → "ffi") is silently truncated
// to its first rune, losing exactly the many-to-one mappings TR39
// skeletons exist for. Use SkeletonAppend, which returns the complete
// sequence; this survives only for callers that depend on the historical
// single-rune behavior.
func (db *DB) SkeletonRune(r rune) rune {
	cur := r
	for depth := 0; depth < 8; depth++ {
		t, ok := db.entries[cur]
		if !ok || len(t) == 0 {
			return cur
		}
		if len(t) == 1 && t[0] == cur {
			return cur
		}
		cur = t[0]
	}
	return cur
}

// SkeletonAppend appends r's full prototype sequence to dst and returns
// the extended slice. Unlike the deprecated SkeletonRune, a multi-rune
// target is expanded in full — and each rune of the target is itself
// resolved recursively (bounded, to tolerate accidental cycles), so the
// result is the fixed point TR39 calls the prototype. A rune with no
// entry appends itself.
func (db *DB) SkeletonAppend(dst []rune, r rune) []rune {
	return db.skeletonExpand(dst, r, 0)
}

func (db *DB) skeletonExpand(dst []rune, r rune, depth int) []rune {
	t, ok := db.entries[r]
	if !ok || len(t) == 0 || depth >= 8 || (len(t) == 1 && t[0] == r) {
		return append(dst, r)
	}
	for _, tr := range t {
		dst = db.skeletonExpand(dst, tr, depth+1)
	}
	return dst
}

// CanonicalRune resolves r through the single-rune portion of its chain:
// it follows entries only while the target is a single rune, stopping
// before any multi-rune expansion. This is the "most plausible original
// character" used for §6.4 reversion — a rune that prototypes to a
// sequence has no one-rune original, so the walk stops at the last
// single-rune form.
func (db *DB) CanonicalRune(r rune) rune {
	cur := r
	for depth := 0; depth < 8; depth++ {
		t, ok := db.entries[cur]
		if !ok || len(t) != 1 || t[0] == cur {
			return cur
		}
		if nt, ok := db.entries[t[0]]; ok && len(nt) > 1 {
			return t[0]
		}
		cur = t[0]
	}
	return cur
}

// Hangul syllable decomposition constants (UAX #15 §3.12).
const (
	hangulSBase  = 0xAC00
	hangulLBase  = 0x1100
	hangulVBase  = 0x1161
	hangulTBase  = 0x11A7
	hangulVCount = 21
	hangulTCount = 28
	hangulNCount = hangulVCount * hangulTCount
	hangulSCount = 19 * hangulNCount
)

// decomposeAppend applies the NFD step of skeleton(X). Hangul syllables
// decompose algorithmically; every other code point is carried through
// unchanged — the embedded dataset keys no entries on non-Hangul
// precomposed forms, so the table-driven remainder of NFD would be a
// no-op over it (a documented restriction of the synthetic data, not of
// the algorithm).
func decomposeAppend(dst []rune, r rune) []rune {
	if r >= hangulSBase && r < hangulSBase+hangulSCount {
		si := r - hangulSBase
		dst = append(dst, hangulLBase+si/hangulNCount, hangulVBase+(si%hangulNCount)/hangulTCount)
		if t := si % hangulTCount; t > 0 {
			dst = append(dst, hangulTBase+t)
		}
		return dst
	}
	return append(dst, r)
}

// Skeleton implements TR39's skeleton(X): decompose (NFD), map every rune
// to its full prototype sequence, and concatenate. Two strings are
// confusable iff their skeletons are equal — including many-to-one
// confusions ("rn" vs "m") that no per-character comparison can see.
func (db *DB) Skeleton(s string) string {
	out := make([]rune, 0, len(s))
	var nfd [3]rune
	for _, r := range s {
		for _, dr := range decomposeAppend(nfd[:0], r) {
			out = db.SkeletonAppend(out, dr)
		}
	}
	return string(out)
}

// UnicodeVersion returns the pinned Unicode version the table was
// generated against ("" when unrecorded).
func (db *DB) UnicodeVersion() string { return db.unicodeVersion }

// GeneratedAt returns the table's generation timestamp ("" when
// unrecorded).
func (db *DB) GeneratedAt() string { return db.generatedAt }

// SetProvenance records the pinned Unicode version and generation stamp
// that Write emits and Parse recovers.
func (db *DB) SetProvenance(unicodeVersion, generatedAt string) {
	db.unicodeVersion = unicodeVersion
	db.generatedAt = generatedAt
}

// Sources returns all source code points in ascending order.
func (db *DB) Sources() []rune {
	out := make([]rune, 0, len(db.entries))
	for r := range db.entries {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of source entries.
func (db *DB) Len() int { return len(db.entries) }

// Entries returns every mapping, sources ascending — the canonical
// iteration the snapshot codec serializes. Target slices are copies.
func (db *DB) Entries() []Entry {
	out := make([]Entry, 0, len(db.entries))
	for _, src := range db.Sources() {
		tgt := db.entries[src]
		cp := make([]rune, len(tgt))
		copy(cp, tgt)
		out = append(out, Entry{Source: src, Target: cp, Comment: db.comment[src]})
	}
	return out
}

// Chars returns the set of all code points mentioned (sources and targets),
// the paper's "number of characters" accounting for Table 1.
func (db *DB) Chars() *ucd.RuneSet {
	s := ucd.NewRuneSet()
	for src, tgt := range db.entries {
		s.Add(src)
		for _, t := range tgt {
			s.Add(t)
		}
	}
	return s
}

// Pairs returns the number of (source, prototype) homoglyph pairs.
func (db *DB) Pairs() int { return len(db.entries) }

// RestrictSources returns a new DB keeping only entries whose source is in
// keep — e.g. UC ∩ IDNA, the paper's Figure 3 intersection.
func (db *DB) RestrictSources(keep *ucd.RuneSet) *DB {
	out := New()
	out.unicodeVersion, out.generatedAt = db.unicodeVersion, db.generatedAt
	for src, tgt := range db.entries {
		if keep.Contains(src) {
			out.Add(src, tgt, db.comment[src])
		}
	}
	return out
}

// Parse reads the TR39 confusables.txt format:
//
//	0430 ;	0061 ;	MA	# ( а → a ) CYRILLIC SMALL LETTER A → LATIN SMALL LETTER A
//
// Lines may be prefixed with a BOM, blank, or comment-only.
func Parse(r io.Reader) (*DB, error) {
	db := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimPrefix(sc.Text(), "\uFEFF")
		if v, ok := strings.CutPrefix(line, "# UnicodeVersion:"); ok {
			db.unicodeVersion = strings.TrimSpace(v)
			continue
		}
		if v, ok := strings.CutPrefix(line, "# GeneratedAt:"); ok {
			db.generatedAt = strings.TrimSpace(v)
			continue
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, ";")
		if len(fields) < 2 {
			return nil, fmt.Errorf("confusables: line %d: want 'source ; target [; type]'", lineNo)
		}
		src, err := parseHexSeq(fields[0])
		if err != nil {
			return nil, fmt.Errorf("confusables: line %d: source: %v", lineNo, err)
		}
		if len(src) != 1 {
			// TR39 sources are single code points; sequences appear only in
			// the (obsolete) SL/ML tables which we reject gracefully.
			return nil, fmt.Errorf("confusables: line %d: multi-codepoint source unsupported", lineNo)
		}
		tgt, err := parseHexSeq(fields[1])
		if err != nil {
			return nil, fmt.Errorf("confusables: line %d: target: %v", lineNo, err)
		}
		if len(tgt) == 0 {
			return nil, fmt.Errorf("confusables: line %d: empty target", lineNo)
		}
		db.Add(src[0], tgt, "")
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("confusables: %w", err)
	}
	return db, nil
}

func parseHexSeq(s string) ([]rune, error) {
	var out []rune
	for _, tok := range strings.Fields(strings.TrimSpace(s)) {
		v, err := strconv.ParseUint(tok, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("bad code point %q", tok)
		}
		out = append(out, rune(v))
	}
	return out, nil
}

// Write serializes the database in confusables.txt format, sources
// ascending, using the MA (mixed-script any-case) class throughout.
func (db *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# confusables.txt — synthetic UC database (ShamFinder reproduction)"); err != nil {
		return err
	}
	if db.unicodeVersion != "" {
		if _, err := fmt.Fprintf(bw, "# UnicodeVersion: %s\n", db.unicodeVersion); err != nil {
			return err
		}
	}
	if db.generatedAt != "" {
		if _, err := fmt.Fprintf(bw, "# GeneratedAt: %s\n", db.generatedAt); err != nil {
			return err
		}
	}
	for _, src := range db.Sources() {
		tgt := db.entries[src]
		parts := make([]string, len(tgt))
		for i, t := range tgt {
			parts[i] = fmt.Sprintf("%04X", t)
		}
		comment := db.comment[src]
		if comment == "" {
			comment = fmt.Sprintf("( %c → %s )", src, string(tgt))
		}
		if _, err := fmt.Fprintf(bw, "%04X ;\t%s ;\tMA\t# %s\n", src, strings.Join(parts, " "), comment); err != nil {
			return err
		}
	}
	return bw.Flush()
}
