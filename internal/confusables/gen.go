package confusables

import "io"

// WriteGenerated writes the synthetic dataset in its committed on-disk
// form: the confusables.txt serialization of BuildSynthetic() with the
// provenance header. This is the single code path cmd/confusablesgen and
// the regeneration-parity test share, so "the CLI's output" and "what CI
// diffs against" can never drift.
func WriteGenerated(w io.Writer, unicodeVersion, generatedAt string) error {
	db := BuildSynthetic()
	db.SetProvenance(unicodeVersion, generatedAt)
	return db.Write(w)
}
