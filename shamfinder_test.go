package shamfinder

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	fwOnce sync.Once
	fwVal  *Framework
	fwErr  error
)

func framework(t testing.TB) *Framework {
	t.Helper()
	fwOnce.Do(func() {
		fwVal, fwErr = New(Config{FontScope: FontFast})
	})
	if fwErr != nil {
		t.Fatalf("New: %v", fwErr)
	}
	return fwVal
}

func TestNewBuildsDatabases(t *testing.T) {
	fw := framework(t)
	if fw.DB() == nil || fw.Font() == nil {
		t.Fatal("nil internals")
	}
	if fw.DB().SimChar().NumPairs() == 0 {
		t.Error("SimChar is empty")
	}
	tm := fw.BuildTimings()
	if tm.CandidatePairs == 0 {
		t.Error("no candidate pairs were compared")
	}
}

func TestDetectEndToEnd(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google", "facebook", "amazon"})

	// Build a homograph with a known twin: Cyrillic о (U+043E) for o.
	ace, err := ToASCII("gооgle.com")
	if err != nil {
		t.Fatal(err)
	}
	label := strings.TrimSuffix(ace, ".com")
	matches := det.DetectLabel(label)
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	m := matches[0]
	if m.Reference != "google" {
		t.Errorf("reference = %q", m.Reference)
	}
	if len(m.Diffs) != 2 {
		t.Errorf("diffs = %v", m.Diffs)
	}
}

func TestDetectCleanLabel(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google"})
	if matches := det.DetectLabel("xn--bcher-kva"); len(matches) != 0 {
		t.Errorf("bücher matched google: %v", matches)
	}
}

func TestRevert(t *testing.T) {
	fw := framework(t)
	got := fw.Revert("gооgle") // Cyrillic о ×2
	if got != "google" {
		t.Errorf("Revert = %q", got)
	}
}

func TestWarn(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google"})
	ace, _ := ToASCII("gооgle")
	matches := det.DetectLabel(ace)
	if len(matches) == 0 {
		t.Fatal("no match to warn about")
	}
	w := fw.Warn(matches[0])
	text := w.Text()
	if !strings.Contains(text, "google") {
		t.Errorf("warning text lacks original: %q", text)
	}
	if !strings.Contains(w.HTML(), "google") {
		t.Error("warning HTML lacks original")
	}
}

func TestConfusableAndHomoglyphs(t *testing.T) {
	fw := framework(t)
	ok, src := fw.Confusable('o', 'о') // Latin o vs Cyrillic о
	if !ok {
		t.Fatal("known twin not confusable")
	}
	if src == 0 {
		t.Error("no source attributed")
	}
	if len(fw.Homoglyphs('o')) == 0 {
		t.Error("no homoglyphs of o")
	}
}

func TestSourceRestriction(t *testing.T) {
	font := framework(t).Font()
	ucOnly, err := NewFromFont(font, Config{Sources: SourceUC})
	if err != nil {
		t.Fatal(err)
	}
	both, err := NewFromFont(font, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The union database must know at least as many homoglyphs of
	// every Latin letter, and strictly more in total (Table 3: 351
	// SimChar vs 141 UC).
	totalUC, totalBoth := 0, 0
	for r := 'a'; r <= 'z'; r++ {
		nUC, nBoth := len(ucOnly.Homoglyphs(r)), len(both.Homoglyphs(r))
		if nBoth < nUC {
			t.Errorf("%c: union %d < UC %d", r, nBoth, nUC)
		}
		totalUC += nUC
		totalBoth += nBoth
	}
	if totalBoth <= totalUC {
		t.Errorf("union homoglyphs %d not above UC-only %d", totalBoth, totalUC)
	}
}

func TestExtractIDNs(t *testing.T) {
	got := ExtractIDNs([]string{"plain.com", "xn--bcher-kva.com", "sub.xn--p1ai"})
	if len(got) != 2 {
		t.Errorf("ExtractIDNs = %v", got)
	}
	if IsIDN("plain.com") || !IsIDN("xn--bcher-kva.com") {
		t.Error("IsIDN mismatch")
	}
}

func TestPunycodeHelpers(t *testing.T) {
	ace, err := ToASCII("bücher.com")
	if err != nil {
		t.Fatal(err)
	}
	if ace != "xn--bcher-kva.com" {
		t.Errorf("ToASCII = %q", ace)
	}
	uni, err := ToUnicode(ace)
	if err != nil {
		t.Fatal(err)
	}
	if uni != "bücher.com" {
		t.Errorf("ToUnicode = %q", uni)
	}
}

func TestWriteSimChar(t *testing.T) {
	fw := framework(t)
	var buf bytes.Buffer
	if err := fw.WriteSimChar(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty SimChar serialisation")
	}
}

func TestNewWithBadFontPath(t *testing.T) {
	if _, err := New(Config{FontPath: "/nonexistent/font.hex"}); err == nil {
		t.Error("missing font accepted")
	}
}

func TestMultiFontStylesGrowDatabase(t *testing.T) {
	base := framework(t)
	multi, err := New(Config{FontScope: FontFast, ExtraStyles: []uint64{99}})
	if err != nil {
		t.Fatal(err)
	}
	nBase := base.DB().SimChar().NumPairs()
	nMulti := multi.DB().SimChar().NumPairs()
	if nMulti <= nBase {
		t.Errorf("multi-font pairs %d not above single-font %d", nMulti, nBase)
	}
}

func TestThresholdAffectsPairCount(t *testing.T) {
	font := framework(t).Font()
	strict, err := NewFromFont(font, Config{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := NewFromFont(font, Config{Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	ns := strict.DB().SimChar().NumPairs()
	nl := loose.DB().SimChar().NumPairs()
	if ns >= nl {
		t.Errorf("θ=1 pairs %d not below θ=6 pairs %d", ns, nl)
	}
}
