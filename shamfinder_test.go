package shamfinder

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	fwOnce sync.Once
	fwVal  *Framework
	fwErr  error
)

func framework(t testing.TB) *Framework {
	t.Helper()
	fwOnce.Do(func() {
		fwVal, fwErr = New(Config{FontScope: FontFast})
	})
	if fwErr != nil {
		t.Fatalf("New: %v", fwErr)
	}
	return fwVal
}

func TestNewBuildsDatabases(t *testing.T) {
	fw := framework(t)
	if fw.DB() == nil || fw.Font() == nil {
		t.Fatal("nil internals")
	}
	if fw.DB().SimChar().NumPairs() == 0 {
		t.Error("SimChar is empty")
	}
	tm := fw.BuildTimings()
	if tm.CandidatePairs == 0 {
		t.Error("no candidate pairs were compared")
	}
}

func TestDetectEndToEnd(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google", "facebook", "amazon"})

	// Build a homograph with a known twin: Cyrillic о (U+043E) for o.
	ace, err := ToASCII("gооgle.com")
	if err != nil {
		t.Fatal(err)
	}
	label := strings.TrimSuffix(ace, ".com")
	matches := det.DetectLabel(label)
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	m := matches[0]
	if m.Reference != "google" {
		t.Errorf("reference = %q", m.Reference)
	}
	if len(m.Diffs) != 2 {
		t.Errorf("diffs = %v", m.Diffs)
	}
}

func TestDetectCleanLabel(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google"})
	if matches := det.DetectLabel("xn--bcher-kva"); len(matches) != 0 {
		t.Errorf("bücher matched google: %v", matches)
	}
}

func TestRevert(t *testing.T) {
	fw := framework(t)
	got := fw.Revert("gооgle") // Cyrillic о ×2
	if got != "google" {
		t.Errorf("Revert = %q", got)
	}
}

func TestWarn(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google"})
	ace, _ := ToASCII("gооgle")
	matches := det.DetectLabel(ace)
	if len(matches) == 0 {
		t.Fatal("no match to warn about")
	}
	w := fw.Warn(matches[0])
	text := w.Text()
	if !strings.Contains(text, "google") {
		t.Errorf("warning text lacks original: %q", text)
	}
	if !strings.Contains(w.HTML(), "google") {
		t.Error("warning HTML lacks original")
	}
}

func TestConfusableAndHomoglyphs(t *testing.T) {
	fw := framework(t)
	ok, src := fw.Confusable('o', 'о') // Latin o vs Cyrillic о
	if !ok {
		t.Fatal("known twin not confusable")
	}
	if src == 0 {
		t.Error("no source attributed")
	}
	if len(fw.Homoglyphs('o')) == 0 {
		t.Error("no homoglyphs of o")
	}
}

func TestSourceRestriction(t *testing.T) {
	font := framework(t).Font()
	ucOnly, err := NewFromFont(font, Config{Sources: SourceUC})
	if err != nil {
		t.Fatal(err)
	}
	both, err := NewFromFont(font, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The union database must know at least as many homoglyphs of
	// every Latin letter, and strictly more in total (Table 3: 351
	// SimChar vs 141 UC).
	totalUC, totalBoth := 0, 0
	for r := 'a'; r <= 'z'; r++ {
		nUC, nBoth := len(ucOnly.Homoglyphs(r)), len(both.Homoglyphs(r))
		if nBoth < nUC {
			t.Errorf("%c: union %d < UC %d", r, nBoth, nUC)
		}
		totalUC += nUC
		totalBoth += nBoth
	}
	if totalBoth <= totalUC {
		t.Errorf("union homoglyphs %d not above UC-only %d", totalBoth, totalUC)
	}
}

func TestExtractIDNs(t *testing.T) {
	got := ExtractIDNs([]string{"plain.com", "xn--bcher-kva.com", "sub.xn--p1ai"})
	if len(got) != 2 {
		t.Errorf("ExtractIDNs = %v", got)
	}
	if IsIDN("plain.com") || !IsIDN("xn--bcher-kva.com") {
		t.Error("IsIDN mismatch")
	}
}

func TestPunycodeHelpers(t *testing.T) {
	ace, err := ToASCII("bücher.com")
	if err != nil {
		t.Fatal(err)
	}
	if ace != "xn--bcher-kva.com" {
		t.Errorf("ToASCII = %q", ace)
	}
	uni, err := ToUnicode(ace)
	if err != nil {
		t.Fatal(err)
	}
	if uni != "bücher.com" {
		t.Errorf("ToUnicode = %q", uni)
	}
}

func TestWriteSimChar(t *testing.T) {
	fw := framework(t)
	var buf bytes.Buffer
	if err := fw.WriteSimChar(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty SimChar serialisation")
	}
}

func TestNewWithBadFontPath(t *testing.T) {
	if _, err := New(Config{FontPath: "/nonexistent/font.hex"}); err == nil {
		t.Error("missing font accepted")
	}
}

func TestMultiFontStylesGrowDatabase(t *testing.T) {
	base := framework(t)
	multi, err := New(Config{FontScope: FontFast, ExtraStyles: []uint64{99}})
	if err != nil {
		t.Fatal(err)
	}
	nBase := base.DB().SimChar().NumPairs()
	nMulti := multi.DB().SimChar().NumPairs()
	if nMulti <= nBase {
		t.Errorf("multi-font pairs %d not above single-font %d", nMulti, nBase)
	}
}

func TestThresholdAffectsPairCount(t *testing.T) {
	font := framework(t).Font()
	strict, err := NewFromFont(font, Config{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := NewFromFont(font, Config{Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	ns := strict.DB().SimChar().NumPairs()
	nl := loose.DB().SimChar().NumPairs()
	if ns >= nl {
		t.Errorf("θ=1 pairs %d not below θ=6 pairs %d", ns, nl)
	}
}

// --- PR 2: snapshots and zero-allocation ingestion ---

func TestSnapshotFacadeRoundTrip(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google", "facebook", "amazon"})
	path := t.TempDir() + "/fw.snap"
	if err := fw.SaveSnapshot(path, det); err != nil {
		t.Fatal(err)
	}
	lfw, ldet, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if ldet == nil {
		t.Fatal("embedded detector lost")
	}
	if lfw.Font() != nil {
		t.Error("snapshot-loaded framework should have no font")
	}
	ace, _ := ToASCII("gооgle.com") // two Cyrillic о
	label := strings.TrimSuffix(ace, ".com")
	want := det.DetectLabel(label)
	got := ldet.DetectLabel(label)
	if len(got) != 1 || len(want) != 1 || got[0].Reference != want[0].Reference ||
		got[0].Unicode != want[0].Unicode || len(got[0].Diffs) != len(want[0].Diffs) {
		t.Fatalf("snapshot detector diverges: got %v want %v", got, want)
	}
	if lfw.Revert("gооgle") != "google" {
		t.Error("Revert broken after snapshot load")
	}
}

func TestReadSnapshotStream(t *testing.T) {
	fw := framework(t)
	var buf bytes.Buffer
	if err := fw.WriteSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	lfw, det, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if det != nil {
		t.Error("unexpected embedded detector")
	}
	if ok, _ := lfw.Confusable('o', 'о'); !ok {
		t.Error("known twin lost in snapshot")
	}
}

func TestNormalizeZoneLine(t *testing.T) {
	cases := []struct {
		in   string
		want string
		keep bool
	}{
		{"", "", false},
		{"   \t", "", false},
		{"plain.com", "", false}, // not an IDN
		{".", "", false},         // bare root
		{"xn--bcher-kva.com", "xn--bcher-kva.com", true},  // FQDN kept, TLD and all
		{"XN--BCHER-KVA.COM", "xn--bcher-kva.com", true},  // case-folded
		{"xn--bcher-kva.net", "xn--bcher-kva.net", true},  // non-.com zones visible
		{"xn--bcher-kva.net.", "xn--bcher-kva.net", true}, // root dot dropped
		{"www.XN--GGLE-55DA.CO.UK", "www.xn--ggle-55da.co.uk", true},
		{"  xn--p1ai \r", "xn--p1ai", true}, // trimmed; bare ACE label kept
		{"xn--p1ai.sub", "xn--p1ai.sub", true},
		// A plain registrable label under an IDN TLD has no scannable
		// candidate — the detector never scans the suffix — so the
		// feeder rejects it before the pooled copy and worker handoff.
		{"sub.xn--p1ai", "", false},
		{"notxn--fake.com", "", false}, // prefix must start a label
	}
	for _, c := range cases {
		buf := []byte(c.in)
		got, ok := NormalizeZoneLine(buf)
		if ok != c.keep {
			t.Errorf("NormalizeZoneLine(%q) keep = %v, want %v", c.in, ok, c.keep)
			continue
		}
		if ok && string(got) != c.want {
			t.Errorf("NormalizeZoneLine(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// naiveNormalizeZoneLine is the allocation-heavy reference
// implementation of the zone-line contract: ASCII-whitespace trim, one
// root dot dropped, scannable-candidate gate, ASCII lowercase. The
// in-place NormalizeZoneLine is differentially fuzzed against it.
func naiveNormalizeZoneLine(line string) (string, bool) {
	s := strings.Trim(line, " \t\r\n\f\v")
	s = strings.TrimSuffix(s, ".")
	if s == "" || !naiveScannable(s) {
		return "", false
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b), true
}

// naiveScannable spells out the gate via Split: any non-ASCII byte, or
// an ACE label that is not the name's final label (a bare ACE label
// counts — it IS the name).
func naiveScannable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return true
		}
	}
	labels := strings.Split(s, ".")
	for i, l := range labels {
		if strings.HasPrefix(strings.ToLower(l), "xn--") && (len(labels) == 1 || i < len(labels)-1) {
			return true
		}
	}
	return false
}

// FuzzNormalizeZoneLine: the in-place fast path must agree with the
// naive reference on arbitrary bytes — including non-UTF-8 garbage,
// interior dots, and whitespace runs. `go test` runs the seed corpus;
// `go test -fuzz=FuzzNormalizeZoneLine` explores further.
func FuzzNormalizeZoneLine(f *testing.F) {
	for _, s := range []string{
		"", " ", ".", "..", "xn--a.com", " XN--A.NET. ", "sub.xn--p1ai",
		"notxn--fake.com", "xn--a..", "\txn--b.co.uk\r\n", "plain.com",
		"xn--", "a.b.xn--c", "xn--a.com extra", "\x80xn--a.com", "XN--A",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		buf := []byte(line)
		got, ok := NormalizeZoneLine(buf)
		want, wantOK := naiveNormalizeZoneLine(line)
		if ok != wantOK {
			t.Fatalf("NormalizeZoneLine(%q) keep = %v, naive = %v", line, ok, wantOK)
		}
		if ok && string(got) != want {
			t.Fatalf("NormalizeZoneLine(%q) = %q, naive = %q", line, got, want)
		}
	})
}

// TestNormalizeZoneLineAllocs: the per-line feeder primitive must not
// allocate, keep or miss.
func TestNormalizeZoneLineAllocs(t *testing.T) {
	idn := []byte("XN--GGLE-55DA.COM")
	plain := []byte("just-a-plain-domain.com")
	buf := make([]byte, 64)
	if n := testing.AllocsPerRun(200, func() {
		copy(buf, idn)
		NormalizeZoneLine(buf[:len(idn)])
	}); n != 0 {
		t.Errorf("NormalizeZoneLine(IDN) allocates %.1f/line", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		copy(buf, plain)
		NormalizeZoneLine(buf[:len(plain)])
	}); n != 0 {
		t.Errorf("NormalizeZoneLine(plain) allocates %.1f/line", n)
	}
}

// TestDetectDomainBytesMissAllocs: the whole per-line pipeline —
// normalize, split, decode, candidate-index probe — must allocate
// nothing for domains that match no reference, across TLD shapes.
func TestDetectDomainBytesMissAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	fw := framework(t)
	det := fw.NewDetector([]string{"google", "amazon"})
	lines := [][]byte{
		[]byte("xn--bcher-kva.com"),
		[]byte("xn--bcher-kva.net"),
		[]byte("xn--bcher-kva.co.uk"),
		[]byte("www.xn--bcher-kva.com"),
		[]byte("xn--bcher-kva.xn--p1ai"),
		[]byte("plain-label.xn--p1ai"),
	}
	buf := make([]byte, 0, 80)
	// Warm the detector's scratch pool outside the measured region.
	for _, l := range lines {
		buf = append(buf[:0], l...)
		if fqdn, ok := NormalizeZoneLine(buf); ok {
			det.DetectDomainBytes(fqdn)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, l := range lines {
			buf = append(buf[:0], l...)
			fqdn, ok := NormalizeZoneLine(buf)
			if !ok {
				continue
			}
			if ms := det.DetectDomainBytes(fqdn); len(ms) != 0 {
				t.Fatal("unexpected match")
			}
		}
	}); n != 0 {
		t.Errorf("miss-path pipeline allocates %.1f per sweep; want 0", n)
	}
}

// TestDetectStreamBytesMatchesBatch: the pooled-buffer stream must find
// exactly what the batch API finds.
func TestDetectStreamBytesMatchesBatch(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google", "facebook", "amazon"})
	ace1, _ := ToASCII("gооgle")   // Cyrillic о ×2
	ace2, _ := ToASCII("fаcebook") // Cyrillic а
	labels := []string{ace1, "clean-label", ace2, "another", ace1}
	want := det.Detect(labels)

	pool := &sync.Pool{New: func() any { b := make([]byte, 0, 80); return &b }}
	in := make(chan *[]byte, 4)
	go func() {
		defer close(in)
		for _, l := range labels {
			bp := pool.Get().(*[]byte)
			*bp = append((*bp)[:0], l...)
			in <- bp
		}
	}()
	var got []Match
	for m := range det.DetectStreamBytes(in, 3, pool) {
		got = append(got, m)
	}
	SortMatches(got)
	if len(got) != len(want) {
		t.Fatalf("stream found %d matches, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i].IDN != want[i].IDN || got[i].Reference != want[i].Reference || got[i].Unicode != want[i].Unicode {
			t.Fatalf("match %d diverges: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestDetectMultiTLDEndToEnd drives the exact cmdDetect pipeline —
// NormalizeZoneLine feeding pooled buffers into DetectStreamBytes —
// over a zone slice spanning .com, .net, a multi-label suffix, and an
// IDN TLD. The seed pipeline (strip ".com", treat the rest as one
// label) silently missed every non-.com line here; the test first
// re-enacts that miss, then asserts the domain-aware pipeline finds
// them all with the right FQDN/TLD context.
func TestDetectMultiTLDEndToEnd(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google", "amazon"})
	g, _ := ToASCII("gооgle") // Cyrillic о ×2
	a, _ := ToASCII("amаzon") // Cyrillic а

	zone := []string{
		"plain.net",                  // not an IDN: rejected at the gate
		g + ".net",                   // non-.com gTLD
		"www." + g + ".com",          // multi-label FQDN, IDN in non-final label
		g + ".xn--p1ai",              // ACE/IDN TLD
		a + ".co.uk",                 // multi-label public suffix
		strings.ToUpper(g) + ".NET.", // uppercase + root dot
	}

	// The seed treatment: TrimSuffix(".com") and detect the remainder as
	// one label. Every line above either keeps its dots or keeps its TLD,
	// so the single-label engine sees a malformed label and finds nothing.
	for _, line := range zone[1:] {
		seedLabel := strings.TrimSuffix(strings.ToLower(line), ".com")
		if ms := det.DetectLabel(seedLabel); len(ms) != 0 {
			t.Fatalf("seed-style DetectLabel(%q) unexpectedly matched: %v", seedLabel, ms)
		}
	}

	// The real pipeline, verbatim from cmdDetect.
	labels := make(chan *[]byte, 4)
	pool := &sync.Pool{New: func() any { b := make([]byte, 0, 80); return &b }}
	go func() {
		defer close(labels)
		for _, line := range zone {
			buf := []byte(line)
			label, ok := NormalizeZoneLine(buf)
			if !ok {
				continue
			}
			bp := pool.Get().(*[]byte)
			*bp = append((*bp)[:0], label...)
			labels <- bp
		}
	}()
	var matches []Match
	for m := range det.DetectStreamBytes(labels, 2, pool) {
		matches = append(matches, m)
	}
	SortMatches(matches)

	type hit struct{ fqdn, ref, tld, imitated string }
	var got []hit
	for _, m := range matches {
		got = append(got, hit{m.FQDN, m.Reference, m.TLD, m.Imitated()})
	}
	want := []hit{ // sorted by FQDN: "www." < "xn--"
		{"www." + g + ".com", "google", "com", "google.com"},
		{a + ".co.uk", "amazon", "co.uk", "amazon.co.uk"},
		{g + ".net", "google", "net", "google.net"},
		{g + ".net", "google", "net", "google.net"}, // the uppercase spelling, normalized
		{g + ".xn--p1ai", "google", "xn--p1ai", "google.xn--p1ai"},
	}
	if len(got) != len(want) {
		t.Fatalf("matches = %+v, want %d hits %+v", got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestDetectLabelBytesDoesNotRetain: the engine must not alias the
// caller's buffer in returned matches — the buffer is recycled.
func TestDetectLabelBytesDoesNotRetain(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google"})
	ace, _ := ToASCII("gооgle")
	buf := []byte(ace)
	matches := det.DetectLabelBytes(buf)
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	for i := range buf {
		buf[i] = 'Z' // clobber, as a recycled buffer would be
	}
	if matches[0].IDN != ace {
		t.Fatalf("match IDN %q aliases the recycled buffer", matches[0].IDN)
	}
}
