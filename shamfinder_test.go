package shamfinder

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	fwOnce sync.Once
	fwVal  *Framework
	fwErr  error
)

func framework(t testing.TB) *Framework {
	t.Helper()
	fwOnce.Do(func() {
		fwVal, fwErr = New(Config{FontScope: FontFast})
	})
	if fwErr != nil {
		t.Fatalf("New: %v", fwErr)
	}
	return fwVal
}

func TestNewBuildsDatabases(t *testing.T) {
	fw := framework(t)
	if fw.DB() == nil || fw.Font() == nil {
		t.Fatal("nil internals")
	}
	if fw.DB().SimChar().NumPairs() == 0 {
		t.Error("SimChar is empty")
	}
	tm := fw.BuildTimings()
	if tm.CandidatePairs == 0 {
		t.Error("no candidate pairs were compared")
	}
}

func TestDetectEndToEnd(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google", "facebook", "amazon"})

	// Build a homograph with a known twin: Cyrillic о (U+043E) for o.
	ace, err := ToASCII("gооgle.com")
	if err != nil {
		t.Fatal(err)
	}
	label := strings.TrimSuffix(ace, ".com")
	matches := det.DetectLabel(label)
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	m := matches[0]
	if m.Reference != "google" {
		t.Errorf("reference = %q", m.Reference)
	}
	if len(m.Diffs) != 2 {
		t.Errorf("diffs = %v", m.Diffs)
	}
}

func TestDetectCleanLabel(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google"})
	if matches := det.DetectLabel("xn--bcher-kva"); len(matches) != 0 {
		t.Errorf("bücher matched google: %v", matches)
	}
}

func TestRevert(t *testing.T) {
	fw := framework(t)
	got := fw.Revert("gооgle") // Cyrillic о ×2
	if got != "google" {
		t.Errorf("Revert = %q", got)
	}
}

func TestWarn(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google"})
	ace, _ := ToASCII("gооgle")
	matches := det.DetectLabel(ace)
	if len(matches) == 0 {
		t.Fatal("no match to warn about")
	}
	w := fw.Warn(matches[0])
	text := w.Text()
	if !strings.Contains(text, "google") {
		t.Errorf("warning text lacks original: %q", text)
	}
	if !strings.Contains(w.HTML(), "google") {
		t.Error("warning HTML lacks original")
	}
}

func TestConfusableAndHomoglyphs(t *testing.T) {
	fw := framework(t)
	ok, src := fw.Confusable('o', 'о') // Latin o vs Cyrillic о
	if !ok {
		t.Fatal("known twin not confusable")
	}
	if src == 0 {
		t.Error("no source attributed")
	}
	if len(fw.Homoglyphs('o')) == 0 {
		t.Error("no homoglyphs of o")
	}
}

func TestSourceRestriction(t *testing.T) {
	font := framework(t).Font()
	ucOnly, err := NewFromFont(font, Config{Sources: SourceUC})
	if err != nil {
		t.Fatal(err)
	}
	both, err := NewFromFont(font, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The union database must know at least as many homoglyphs of
	// every Latin letter, and strictly more in total (Table 3: 351
	// SimChar vs 141 UC).
	totalUC, totalBoth := 0, 0
	for r := 'a'; r <= 'z'; r++ {
		nUC, nBoth := len(ucOnly.Homoglyphs(r)), len(both.Homoglyphs(r))
		if nBoth < nUC {
			t.Errorf("%c: union %d < UC %d", r, nBoth, nUC)
		}
		totalUC += nUC
		totalBoth += nBoth
	}
	if totalBoth <= totalUC {
		t.Errorf("union homoglyphs %d not above UC-only %d", totalBoth, totalUC)
	}
}

func TestExtractIDNs(t *testing.T) {
	got := ExtractIDNs([]string{"plain.com", "xn--bcher-kva.com", "sub.xn--p1ai"})
	if len(got) != 2 {
		t.Errorf("ExtractIDNs = %v", got)
	}
	if IsIDN("plain.com") || !IsIDN("xn--bcher-kva.com") {
		t.Error("IsIDN mismatch")
	}
}

func TestPunycodeHelpers(t *testing.T) {
	ace, err := ToASCII("bücher.com")
	if err != nil {
		t.Fatal(err)
	}
	if ace != "xn--bcher-kva.com" {
		t.Errorf("ToASCII = %q", ace)
	}
	uni, err := ToUnicode(ace)
	if err != nil {
		t.Fatal(err)
	}
	if uni != "bücher.com" {
		t.Errorf("ToUnicode = %q", uni)
	}
}

func TestWriteSimChar(t *testing.T) {
	fw := framework(t)
	var buf bytes.Buffer
	if err := fw.WriteSimChar(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty SimChar serialisation")
	}
}

func TestNewWithBadFontPath(t *testing.T) {
	if _, err := New(Config{FontPath: "/nonexistent/font.hex"}); err == nil {
		t.Error("missing font accepted")
	}
}

func TestMultiFontStylesGrowDatabase(t *testing.T) {
	base := framework(t)
	multi, err := New(Config{FontScope: FontFast, ExtraStyles: []uint64{99}})
	if err != nil {
		t.Fatal(err)
	}
	nBase := base.DB().SimChar().NumPairs()
	nMulti := multi.DB().SimChar().NumPairs()
	if nMulti <= nBase {
		t.Errorf("multi-font pairs %d not above single-font %d", nMulti, nBase)
	}
}

func TestThresholdAffectsPairCount(t *testing.T) {
	font := framework(t).Font()
	strict, err := NewFromFont(font, Config{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := NewFromFont(font, Config{Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	ns := strict.DB().SimChar().NumPairs()
	nl := loose.DB().SimChar().NumPairs()
	if ns >= nl {
		t.Errorf("θ=1 pairs %d not below θ=6 pairs %d", ns, nl)
	}
}

// --- PR 2: snapshots and zero-allocation ingestion ---

func TestSnapshotFacadeRoundTrip(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google", "facebook", "amazon"})
	path := t.TempDir() + "/fw.snap"
	if err := fw.SaveSnapshot(path, det); err != nil {
		t.Fatal(err)
	}
	lfw, ldet, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if ldet == nil {
		t.Fatal("embedded detector lost")
	}
	if lfw.Font() != nil {
		t.Error("snapshot-loaded framework should have no font")
	}
	ace, _ := ToASCII("gооgle.com") // two Cyrillic о
	label := strings.TrimSuffix(ace, ".com")
	want := det.DetectLabel(label)
	got := ldet.DetectLabel(label)
	if len(got) != 1 || len(want) != 1 || got[0].Reference != want[0].Reference ||
		got[0].Unicode != want[0].Unicode || len(got[0].Diffs) != len(want[0].Diffs) {
		t.Fatalf("snapshot detector diverges: got %v want %v", got, want)
	}
	if lfw.Revert("gооgle") != "google" {
		t.Error("Revert broken after snapshot load")
	}
}

func TestReadSnapshotStream(t *testing.T) {
	fw := framework(t)
	var buf bytes.Buffer
	if err := fw.WriteSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	lfw, det, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if det != nil {
		t.Error("unexpected embedded detector")
	}
	if ok, _ := lfw.Confusable('o', 'о'); !ok {
		t.Error("known twin lost in snapshot")
	}
}

func TestNormalizeZoneLine(t *testing.T) {
	cases := []struct {
		in   string
		want string
		keep bool
	}{
		{"", "", false},
		{"   \t", "", false},
		{"plain.com", "", false},                     // not an IDN
		{"xn--bcher-kva.com", "xn--bcher-kva", true}, // ACE + .com stripped
		{"XN--BCHER-KVA.COM", "xn--bcher-kva", true}, // case-folded first
		{"  xn--p1ai \r", "xn--p1ai", true},          // trimmed, no .com
		{"sub.xn--p1ai", "sub.xn--p1ai", true},       // ACE in later label
		{"notxn--fake.com", "", false},               // prefix must start a label
	}
	for _, c := range cases {
		buf := []byte(c.in)
		got, ok := NormalizeZoneLine(buf)
		if ok != c.keep {
			t.Errorf("NormalizeZoneLine(%q) keep = %v, want %v", c.in, ok, c.keep)
			continue
		}
		if ok && string(got) != c.want {
			t.Errorf("NormalizeZoneLine(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeZoneLineAllocs: the per-line feeder primitive must not
// allocate, keep or miss.
func TestNormalizeZoneLineAllocs(t *testing.T) {
	idn := []byte("XN--GGLE-55DA.COM")
	plain := []byte("just-a-plain-domain.com")
	buf := make([]byte, 64)
	if n := testing.AllocsPerRun(200, func() {
		copy(buf, idn)
		NormalizeZoneLine(buf[:len(idn)])
	}); n != 0 {
		t.Errorf("NormalizeZoneLine(IDN) allocates %.1f/line", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		copy(buf, plain)
		NormalizeZoneLine(buf[:len(plain)])
	}); n != 0 {
		t.Errorf("NormalizeZoneLine(plain) allocates %.1f/line", n)
	}
}

// TestDetectStreamBytesMatchesBatch: the pooled-buffer stream must find
// exactly what the batch API finds.
func TestDetectStreamBytesMatchesBatch(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google", "facebook", "amazon"})
	ace1, _ := ToASCII("gооgle")   // Cyrillic о ×2
	ace2, _ := ToASCII("fаcebook") // Cyrillic а
	labels := []string{ace1, "clean-label", ace2, "another", ace1}
	want := det.Detect(labels)

	pool := &sync.Pool{New: func() any { b := make([]byte, 0, 80); return &b }}
	in := make(chan *[]byte, 4)
	go func() {
		defer close(in)
		for _, l := range labels {
			bp := pool.Get().(*[]byte)
			*bp = append((*bp)[:0], l...)
			in <- bp
		}
	}()
	var got []Match
	for m := range det.DetectStreamBytes(in, 3, pool) {
		got = append(got, m)
	}
	SortMatches(got)
	if len(got) != len(want) {
		t.Fatalf("stream found %d matches, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i].IDN != want[i].IDN || got[i].Reference != want[i].Reference || got[i].Unicode != want[i].Unicode {
			t.Fatalf("match %d diverges: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestDetectLabelBytesDoesNotRetain: the engine must not alias the
// caller's buffer in returned matches — the buffer is recycled.
func TestDetectLabelBytesDoesNotRetain(t *testing.T) {
	fw := framework(t)
	det := fw.NewDetector([]string{"google"})
	ace, _ := ToASCII("gооgle")
	buf := []byte(ace)
	matches := det.DetectLabelBytes(buf)
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	for i := range buf {
		buf[i] = 'Z' // clobber, as a recycled buffer would be
	}
	if matches[0].IDN != ace {
		t.Fatalf("match IDN %q aliases the recycled buffer", matches[0].IDN)
	}
}
