// Browser warning: the paper's Section 7.2 countermeasure as a working
// HTTP forward proxy. Instead of forcibly rewriting IDNs to Punycode
// (what Chrome and Firefox do, destroying the human-readable name),
// the proxy intercepts requests whose Host is an IDN homograph of a
// protected brand and serves the Figure 12 interstitial: the Unicode
// name with the substituted characters called out, and both "continue"
// and "go to the real site" links.
//
//	go run ./examples/browser-warning [-addr 127.0.0.1:8080]
//
// Try it (the proxy answers directly, so plain curl works):
//
//	curl -s 'http://127.0.0.1:8080/?host=xn--ggle-0nda.com'
package main

import (
	"flag"
	"fmt"
	"html"
	"log"
	"net/http"
	"strings"

	"repro"
)

// protectedBrands is the reference list the proxy guards. A deployment
// would load the Alexa top sites or the enterprise's own domains.
var protectedBrands = []string{
	"google", "gmail", "youtube", "facebook", "amazon",
	"paypal", "binance", "myetherwallet", "wikipedia",
}

// proxy holds the detection state behind a hot-swappable Engine: a
// long-running interceptor must absorb brand-list updates without a
// restart (the seed version froze a Detector at startup — adding a
// brand meant rebuilding the world and bouncing the proxy).
type proxy struct {
	fw     *shamfinder.Framework
	engine *shamfinder.Engine
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	once := flag.Bool("demo", false, "serve one built-in demo request and exit (no listener)")
	flag.Parse()

	log.Println("building homoglyph database...")
	fw, err := shamfinder.New(shamfinder.Config{FontScope: shamfinder.FontFast})
	if err != nil {
		log.Fatal(err)
	}
	p := &proxy{fw: fw, engine: fw.NewEngine(protectedBrands)}

	if *once {
		fmt.Println(p.renderDemo("xn--ggle-0nda.com"))
		return
	}
	log.Printf("listening on http://%s — try /?host=xn--ggle-0nda.com", *addr)
	log.Fatal(http.ListenAndServe(*addr, p))
}

// ServeHTTP inspects the requested host (from the URL in proxy mode or
// the ?host= parameter in demo mode) and either passes the request
// through or serves the interstitial.
func (p *proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := r.URL.Query().Get("host")
	if host == "" {
		host = r.Host
	}
	matches := p.inspect(host)
	if len(matches) == 0 {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%s is not a homograph of a protected brand; passing through.\n", host)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, p.interstitial(host, matches[0]))
}

// inspect returns homograph matches for the host, scanned as a full
// domain: any TLD, any label depth, so xn--ggle-0nda.net and
// www.xn--ggle-0nda.co.uk are inspected as readily as the .com form.
func (p *proxy) inspect(host string) []shamfinder.Match {
	name := host
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[:i]
	}
	// One atomic engine load per request: a brand-list swap (e.g.
	// p.engine.Rebuild(updatedBrands) from an admin endpoint) lands
	// between requests, never mid-inspection.
	matches, _ := p.engine.DetectDomain(strings.ToLower(name))
	return matches
}

// interstitial renders the Figure 12 warning page.
func (p *proxy) interstitial(host string, m shamfinder.Match) string {
	warning := p.fw.Warn(m)
	var subs strings.Builder
	for _, d := range m.Diffs {
		subs.WriteString(fmt.Sprintf(
			"<li><span class=glyph>%s</span> U+%04X imitates <span class=glyph>%s</span> U+%04X</li>",
			html.EscapeString(string(d.Got)), d.Got,
			html.EscapeString(string(d.Want)), d.Want))
	}
	real := m.Imitated() // the reference under the TLD actually accessed
	return fmt.Sprintf(`<!doctype html>
<html><head><meta charset="utf-8"><title>Warning — possible homograph</title>
<style>
body{font-family:sans-serif;max-width:40em;margin:3em auto}
.box{border:3px solid #c00;border-radius:8px;padding:1.5em}
.glyph{font-size:1.4em;background:#fee;padding:0 .2em;border-radius:3px}
a.real{background:#080;color:#fff;padding:.5em 1em;border-radius:4px;text-decoration:none}
a.risky{color:#c00}
</style></head><body>
<div class=box>
<h1>⚠ Use of homoglyph detected</h1>
<p>You are accessing <b>%s</b> (<code>%s</code>).<br>Did you mean <b>%s</b>?</p>
<ul>%s</ul>
<p><a class=real href="https://%s/">Go to %s</a> &nbsp;
<a class=risky href="https://%s/?confirmed=1">Continue to %s anyway</a></p>
</div>
<pre>%s</pre>
</body></html>`,
		html.EscapeString(m.Unicode), html.EscapeString(host),
		html.EscapeString(real), subs.String(),
		html.EscapeString(real), html.EscapeString(real),
		html.EscapeString(host), html.EscapeString(m.Unicode),
		html.EscapeString(warning.Text()))
}

// renderDemo produces the interstitial for one hard-coded host,
// letting the example run without binding a port.
func (p *proxy) renderDemo(host string) string {
	matches := p.inspect(host)
	if len(matches) == 0 {
		return host + ": no homograph detected"
	}
	return p.interstitial(host, matches[0])
}
