// Serve + hot reload: the paper's "daily operation" model (Section 5)
// as a running service. Detection must answer continuously while new
// reference lists and zone snapshots arrive; this example starts the
// HTTP serving layer, queries it, swaps the reference set live over
// POST /v1/reload, and shows the detection set change — same process,
// no restart, epochs proving which state answered each query.
//
//	go run ./examples/serve-reload
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro"
)

func main() {
	log.Println("building homoglyph database...")
	ready := make(chan string, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Start the service on an ephemeral port. Serve owns the engine:
	// epoch 1 protects google and paypal.
	done := make(chan error, 1)
	go func() {
		done <- shamfinder.Serve(ctx, shamfinder.ServeOptions{
			Addr:       "127.0.0.1:0",
			References: []string{"google", "paypal"},
			Build:      shamfinder.Config{FontScope: shamfinder.FontFast},
			OnListen:   func(addr net.Addr) { ready <- addr.String() },
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		log.Fatal(err)
	}
	log.Printf("serving on %s", base)

	// gооgle.com (Cyrillic о ×2) and wіkіpedia.org (Ukrainian і ×2):
	// only the first is a homograph of an epoch-1 reference.
	probes := []string{"xn--ggle-55da.com", "xn--wkpedia-rogb.org"}
	query(base, probes)

	// The daily update arrives: wikipedia joins the protected set,
	// paypal rotates out. One POST, one epoch, zero downtime.
	log.Println("reloading references: google, wikipedia ...")
	reload(base, []string{"google", "wikipedia"})
	query(base, probes)

	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	log.Println("drained and shut down cleanly")
}

// query posts the probe batch to /v1/detect and prints which state
// (epoch) answered and what it detected.
func query(base string, fqdns []string) {
	body, _ := json.Marshal(map[string]any{"fqdns": fqdns})
	var out struct {
		Epoch   uint64 `json:"epoch"`
		Matches []struct {
			FQDN     string `json:"fqdn"`
			Unicode  string `json:"unicode"`
			Imitated string `json:"imitated"`
		} `json:"matches"`
	}
	post(base+"/v1/detect", body, &out)
	fmt.Printf("epoch %d: %d of %d probes are homographs\n", out.Epoch, len(out.Matches), len(fqdns))
	for _, m := range out.Matches {
		fmt.Printf("  %s (%s) imitates %s\n", m.FQDN, m.Unicode, m.Imitated)
	}
}

// reload swaps the reference set via the API and reports the new epoch.
func reload(base string, refs []string) {
	body, _ := json.Marshal(map[string]any{"references": refs})
	var out struct {
		Epoch      uint64 `json:"epoch"`
		References int    `json:"references"`
	}
	post(base+"/v1/reload", body, &out)
	fmt.Printf("swapped to epoch %d (%d references)\n", out.Epoch, out.References)
}

func post(url string, body []byte, v any) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s: %s", url, resp.Status, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatal(err)
	}
}
