// Registry audit: defensive brand protection. Given a brand label,
// enumerate the registrable single-substitution homographs the
// homoglyph database knows about, then check each against live DNS to
// see which are already registered — and by whom (NS records). Brand
// owners run exactly this loop to decide which lookalikes to
// defensively register (the paper's Table 13 found 178 such
// brand-protection registrations).
//
// The DNS check runs against a simulated .com zone with a few of the
// lookalikes pre-registered; point -server at a real resolver to audit
// the real registry.
//
//	go run ./examples/registry-audit [-brand paypal]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro"
	"repro/internal/dnsclient"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/idntable"
	"repro/internal/punycode"
	"repro/internal/zonefile"
)

func main() {
	brand := flag.String("brand", "paypal", "brand label to audit (without TLD)")
	tld := flag.String("tld", "com", "TLD whose IANA IDN table gates registrability")
	server := flag.String("server", "", "DNS server host:port; empty = built-in simulated zone")
	limit := flag.Int("limit", 40, "maximum candidates to probe")
	flag.Parse()

	log.Println("building homoglyph database...")
	fw, err := shamfinder.New(shamfinder.Config{FontScope: shamfinder.FontFast})
	if err != nil {
		log.Fatal(err)
	}
	table, ok := idntable.Builtin(*tld)
	if !ok {
		log.Fatalf("no built-in IDN table for .%s (have %v)", *tld, idntable.BuiltinTLDs())
	}

	candidates := enumerate(fw, table, *brand, *limit)
	fmt.Printf("%d homograph candidates for %s.%s registrable under the .%s IDN table:\n\n",
		len(candidates), *brand, table.TLD, table.TLD)

	addr := *server
	var srv *dnsserver.Server
	if addr == "" {
		srv, addr = simulatedZone(candidates)
		defer srv.Close()
	}
	client := dnsclient.New(addr)

	results := client.ProbeBatch(domains(candidates), 16)
	registered := 0
	for i, p := range results {
		status := "available"
		if p.Err != nil {
			status = "error: " + p.Err.Error()
		} else if p.HasNS {
			status = "REGISTERED"
			registered++
		}
		fmt.Printf("  %-30s %-28s %s\n", candidates[i].unicode, p.Name, status)
	}
	fmt.Printf("\n%d of %d already registered — review these for defensive registration or takedown.\n",
		registered, len(candidates))
}

type candidate struct {
	unicode string // e.g. "раypal.com"
	ascii   string // e.g. "xn--ypal-…"
}

func domains(cs []candidate) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.ascii
	}
	return out
}

// enumerate builds single-substitution homographs of brand that the
// TLD's IDN table permits (the paper's Section 2.1 point: an attack
// must survive the registry's inclusion policy).
func enumerate(fw *shamfinder.Framework, table *idntable.Table, brand string, limit int) []candidate {
	runes := []rune(strings.ToLower(brand))
	var out []candidate
	for pos, r := range runes {
		glyphs := table.FilterHomoglyphs(fw.Homoglyphs(r))
		sort.Slice(glyphs, func(i, j int) bool { return glyphs[i] < glyphs[j] })
		for _, g := range glyphs {
			variant := append([]rune(nil), runes...)
			variant[pos] = g
			label := string(variant)
			if !table.Allows(label) {
				continue // another character in the brand is off-table
			}
			ascii, err := punycode.ToASCII(label + "." + table.TLD)
			if err != nil {
				continue
			}
			out = append(out, candidate{unicode: label + "." + table.TLD, ascii: ascii})
			if len(out) == limit {
				return out
			}
		}
	}
	return out
}

// simulatedZone registers every third candidate in a loopback zone so
// the audit has something to find.
func simulatedZone(cs []candidate) (*dnsserver.Server, string) {
	origin := "com."
	if len(cs) > 0 {
		if i := strings.LastIndexByte(cs[0].ascii, '.'); i >= 0 {
			origin = cs[0].ascii[i+1:] + "."
		}
	}
	z := &zonefile.Zone{Origin: origin, TTL: 300}
	z.Records = append(z.Records, dnswire.Record{
		Name: origin, Class: dnswire.ClassIN, TTL: 900,
		Data: dnswire.SOA{MName: "a.gtld-servers.net.", RName: "nstld.example.",
			Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400},
	})
	for i, c := range cs {
		if i%3 != 0 {
			continue
		}
		z.Records = append(z.Records, dnswire.Record{
			Name: c.ascii + ".", Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.NS{Host: "ns1.squatter-hosting.example."},
		})
	}
	store := dnsserver.NewStore()
	store.AddZone(z)
	srv := dnsserver.NewServer(store)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	return srv, srv.Addr()
}
