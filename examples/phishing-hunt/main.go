// Phishing hunt: the paper's Section 5–6 pipeline end to end, on live
// (simulated) infrastructure — now driven by the triage pipeline, so
// DNS probing, web classification and blacklist coverage run as one
// streaming, backpressured chain instead of three sequential batches.
//
//  1. Generate a synthetic .com registry with injected homographs.
//
//  2. Extract IDNs from the domain list (Step 2 of the framework).
//
//  3. Detect homographs of the Alexa-style reference list (Step 3).
//
//  4. Stream every detected homograph through the triage pipeline:
//     bounded-concurrency DNS probing (rate-limited), web
//     classification of the resolvable set (§6.2 gate, with the
//     parked-by-delegation first pass), and blacklist lookup — one
//     record per domain, in deterministic input order.
//
//  5. Print the hunt report from the running tally (Tables 12–14).
//
//     go run ./examples/phishing-hunt
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/blacklist"
	"repro/internal/dnsclient"
	"repro/internal/dnsserver"
	"repro/internal/hostsim"
	"repro/internal/ranking"
	"repro/internal/registry"
	"repro/internal/triage"
	"repro/internal/webclassify"
	"repro/internal/websim"
)

func main() {
	const seed = 1337

	log.Println("building homoglyph database (UC ∪ SimChar)...")
	fw, err := shamfinder.New(shamfinder.Config{FontScope: shamfinder.FontFast})
	if err != nil {
		log.Fatal(err)
	}

	log.Println("generating synthetic registry...")
	refs := ranking.Generate(10000, seed, ranking.PaperAnchors())
	reg, err := registry.Generate(registry.Options{
		Seed: seed, Scale: 0.0001, Refs: refs, DB: fw.DB(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: extract IDNs from the full registration list.
	var all []string
	reg.ForEachDomain(func(d string, isIDN bool, _ registry.Membership) {
		all = append(all, d)
	})
	idns := shamfinder.ExtractIDNs(all)
	log.Printf("registry: %d domains, %d IDNs", len(all), len(idns))

	// Step 3: Algorithm 1 against the top-10k references. The detector
	// is domain-aware: full FQDNs go in, matches carry the FQDN back.
	det := fw.NewDetector(refs.SLDs(10000))
	start := time.Now()
	matches := det.Detect(idns)
	inputs := triage.InputsFromMatches(matches)
	log.Printf("detected %d homographs in %v", len(inputs), time.Since(start).Round(time.Millisecond))

	// Stand up the simulated serving infrastructure.
	store := dnsserver.NewStore()
	store.AddZone(reg.BuildProbeZone(0))
	dns := dnsserver.NewServer(store)
	if err := dns.ListenAndServe("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer dns.Close()

	mapper, err := hostsim.NewMapper()
	if err != nil {
		log.Fatal(err)
	}
	web := websim.NewServer()
	if err := web.Start(); err != nil {
		log.Fatal(err)
	}
	defer web.Close()
	websim.Deploy(reg, web, mapper)

	// Steps 4–5 as ONE streaming chain: DNS probe → web classify →
	// blacklist, connected by bounded channels. The §6.2 gate means
	// unresolvable homographs never reach the web stage; parked
	// delegations classify without a fetch; the rate limit caps the
	// aggregate query rate the way a polite zone-scale sweep must.
	client := dnsclient.New(dns.Addr())
	feeds := blacklist.FromRegistry(reg, blacklist.DefaultFiller(), seed)
	pipeline, err := triage.New(triage.Config{
		DNS: client,
		Classifier: &webclassify.Classifier{
			Resolve:     mapper.Resolve,
			UserAgent:   "Mozilla/5.0 (X11; Linux x86_64) HuntBrowser/1.0",
			Reverter:    fw.RevertDomain,
			IsMalicious: feeds.AnyContains,
		},
		Blacklists: feeds,
		DNSWorkers: 32,
		WebWorkers: 32,
		RateLimit:  2000,
		ParkingNS:  registry.ParkingProviders,
	})
	if err != nil {
		log.Fatal(err)
	}

	start = time.Now()
	in := make(chan triage.Input)
	go func() {
		defer close(in)
		for _, input := range inputs {
			in <- input
		}
	}()
	tally := triage.NewTally()
	var catches []triage.Record
	for rec := range pipeline.Stream(context.Background(), in) {
		tally.Add(rec)
		if len(rec.Blacklists) > 0 || rec.RedirectClass == string(webclassify.RedirMalicious) {
			catches = append(catches, rec)
		}
	}
	log.Printf("triaged %d homographs in %v (%d probed, %d fetched)",
		tally.Total, time.Since(start).Round(time.Millisecond),
		pipeline.Progress().Probed, pipeline.Progress().Fetched)

	fmt.Println("\n=== hunt report ===")
	for _, tbl := range tally.Tables() {
		fmt.Println(tbl.String())
	}
	fmt.Println(tally.TableFourteen().String())

	// The catch — blacklisted or maliciously redirecting.
	fmt.Println("confirmed-malicious homographs:")
	for i, rec := range catches {
		if i >= 10 {
			break
		}
		uni, _ := shamfinder.ToUnicode(rec.FQDN)
		original := rec.Reference
		if original == "" {
			if o, ok := fw.RevertDomain(rec.FQDN); ok {
				original = o
			}
		}
		fmt.Printf("  %-28s (%s) imitates %-20s [%s %v]\n",
			rec.FQDN, uni, original, rec.Category, rec.Blacklists)
	}
}
