// Phishing hunt: the paper's Section 5–6 pipeline end to end, on live
// (simulated) infrastructure.
//
//  1. Generate a synthetic .com registry with injected homographs.
//
//  2. Extract IDNs from the domain list (Step 2 of the framework).
//
//  3. Detect homographs of the Alexa-style reference list (Step 3).
//
//  4. Probe DNS for NS/A records, port-scan the resolvable set, and
//     classify the responsive websites over HTTP.
//
//  5. Cross-check against the blacklist feeds and print the hunt
//     report.
//
//     go run ./examples/phishing-hunt
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/blacklist"
	"repro/internal/dnsclient"
	"repro/internal/dnsserver"
	"repro/internal/hostsim"
	"repro/internal/portscan"
	"repro/internal/punycode"
	"repro/internal/ranking"
	"repro/internal/registry"
	"repro/internal/webclassify"
	"repro/internal/websim"
)

func main() {
	const seed = 1337

	log.Println("building homoglyph database (UC ∪ SimChar)...")
	fw, err := shamfinder.New(shamfinder.Config{FontScope: shamfinder.FontFast})
	if err != nil {
		log.Fatal(err)
	}

	log.Println("generating synthetic registry...")
	refs := ranking.Generate(10000, seed, ranking.PaperAnchors())
	reg, err := registry.Generate(registry.Options{
		Seed: seed, Scale: 0.0001, Refs: refs, DB: fw.DB(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: extract IDNs from the full registration list.
	var all []string
	reg.ForEachDomain(func(d string, isIDN bool, _ registry.Membership) {
		all = append(all, d)
	})
	idns := shamfinder.ExtractIDNs(all)
	log.Printf("registry: %d domains, %d IDNs", len(all), len(idns))

	// Step 3: Algorithm 1 against the top-10k references. The detector
	// is domain-aware: full FQDNs go in, matches carry the FQDN back.
	det := fw.NewDetector(refs.SLDs(10000))
	start := time.Now()
	matches := det.Detect(idns)
	detected := make([]string, 0, len(matches))
	seen := make(map[string]bool)
	for _, m := range matches {
		if !seen[m.FQDN] {
			seen[m.FQDN] = true
			detected = append(detected, m.FQDN)
		}
	}
	log.Printf("detected %d homographs in %v", len(detected), time.Since(start).Round(time.Millisecond))

	// Stand up the simulated serving infrastructure.
	store := dnsserver.NewStore()
	store.AddZone(reg.BuildProbeZone(0))
	dns := dnsserver.NewServer(store)
	if err := dns.ListenAndServe("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer dns.Close()

	mapper, err := hostsim.NewMapper()
	if err != nil {
		log.Fatal(err)
	}
	web := websim.NewServer()
	if err := web.Start(); err != nil {
		log.Fatal(err)
	}
	defer web.Close()
	websim.Deploy(reg, web, mapper)

	// Step 4a: DNS probing.
	client := dnsclient.New(dns.Addr())
	probes := client.ProbeBatch(detected, 32)
	var withA []string
	for _, p := range probes {
		if p.Err != nil {
			log.Fatalf("probing %s: %v", p.Name, p.Err)
		}
		if p.HasA {
			withA = append(withA, p.Name)
		}
	}
	log.Printf("resolvable: %d of %d", len(withA), len(detected))

	// Step 4b: port scan.
	scanner := &portscan.Scanner{Resolve: mapper.Resolve, Timeout: time.Second, Workers: 64}
	scan := scanner.Scan(withA, []int{80, 443})
	sum := portscan.Summarize(scan)
	log.Printf("port scan: %d on :80, %d on :443, %d active", sum.Port80, sum.Port443, sum.AnyOpen)

	var active []string
	for _, r := range scan {
		if r.AnyOpen() {
			active = append(active, r.Domain)
		}
	}

	// Step 4c: web classification.
	feeds := blacklist.FromRegistry(reg, blacklist.DefaultFiller(), seed)
	classifier := &webclassify.Classifier{
		Resolve:   mapper.Resolve,
		UserAgent: "Mozilla/5.0 (X11; Linux x86_64) HuntBrowser/1.0",
		Reverter: func(domain string) (string, bool) {
			label, tld := shamfinder.Registrable(domain)
			uni, err := punycode.ToUnicodeLabel(label)
			if err != nil {
				return "", false
			}
			reverted := fw.Revert(uni)
			if tld != "" {
				reverted += "." + tld
			}
			return reverted, true
		},
		IsMalicious: feeds.AnyContains,
	}
	results := classifier.ClassifyBatch(active)
	tally := webclassify.TallyResults(results)

	fmt.Println("\n=== hunt report ===")
	fmt.Printf("%-18s %d\n", "detected:", len(detected))
	fmt.Printf("%-18s %d\n", "active:", len(active))
	for cat, n := range tally.ByCategory {
		fmt.Printf("  %-16s %d\n", cat, n)
	}
	fmt.Println("redirects:")
	for class, n := range tally.ByRedirect {
		fmt.Printf("  %-16s %d\n", class, n)
	}

	// Step 5: the catch — blacklisted or maliciously redirecting.
	fmt.Println("\nconfirmed-malicious homographs:")
	shown := 0
	for _, r := range results {
		bad := feeds.AnyContains(r.Domain) || r.RedirectClass == webclassify.RedirMalicious
		if !bad || shown >= 10 {
			continue
		}
		uni, _ := shamfinder.ToUnicode(r.Domain)
		original := "?"
		if o, ok := classifier.Reverter(r.Domain); ok {
			original = o
		}
		fmt.Printf("  %-28s (%s) imitates %-20s [%s]\n", r.Domain, uni, original, r.Category)
		shown++
	}
}
