// Plagiarism scan: the paper's conclusion notes that SimChar "could be
// used for other promising security applications such as detecting
// obfuscated plagiarism, which exploits Unicode homoglyphs" — students
// (and spammers) swap Latin letters for visually identical Cyrillic or
// Greek ones so copied text no longer string-matches the source.
//
// This example takes a source paragraph and a submission in which some
// characters were homoglyph-substituted, then:
//
//  1. flags every word containing non-ASCII characters that
//     canonicalize back to ASCII (the obfuscation fingerprint), and
//
//  2. shows that after reversion the submission matches the source
//     verbatim, defeating the obfuscation.
//
//     go run ./examples/plagiarism-scan
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

const source = `the quick brown fox jumps over the lazy dog while ` +
	`every good boy deserves fudge and pack my box with five dozen jugs`

func main() {
	log.Println("building homoglyph database...")
	fw, err := shamfinder.New(shamfinder.Config{FontScope: shamfinder.FontFast})
	if err != nil {
		log.Fatal(err)
	}

	// Fabricate the obfuscated submission: replace a letter in every
	// third word with one of its homoglyphs, exactly as obfuscation
	// tools do.
	submission := obfuscate(fw, source)
	fmt.Printf("submission:\n  %s\n\n", submission)

	// Step 1: fingerprint — flag obfuscated words.
	fmt.Println("flagged words:")
	flagged := 0
	for i, word := range strings.Fields(submission) {
		subs := obfuscatedRunes(fw, word)
		if len(subs) == 0 {
			continue
		}
		flagged++
		fmt.Printf("  word %2d %-12q -> %-12q (%s)\n",
			i+1, word, fw.Revert(word), strings.Join(subs, ", "))
	}

	// Step 2: reversion defeats the obfuscation.
	reverted := fw.Revert(submission)
	fmt.Printf("\n%d of %d words were homoglyph-obfuscated\n",
		flagged, len(strings.Fields(submission)))
	if reverted == source {
		fmt.Println("reverted submission matches the source verbatim: plagiarism confirmed")
	} else {
		fmt.Println("reverted submission does NOT match the source")
	}
}

// obfuscate swaps one letter of every third word for a homoglyph,
// deterministically.
func obfuscate(fw *shamfinder.Framework, text string) string {
	words := strings.Fields(text)
	for i := 2; i < len(words); i += 3 {
		runes := []rune(words[i])
		for pos, r := range runes {
			glyphs := fw.Homoglyphs(r)
			if len(glyphs) == 0 {
				continue
			}
			runes[pos] = glyphs[(i+pos)%len(glyphs)]
			break
		}
		words[i] = string(runes)
	}
	return strings.Join(words, " ")
}

// obfuscatedRunes describes each non-ASCII rune of word that reverts
// to ASCII.
func obfuscatedRunes(fw *shamfinder.Framework, word string) []string {
	var out []string
	for _, r := range word {
		if r < 0x80 {
			continue
		}
		if c := fw.Revert(string(r)); len(c) == 1 && c[0] < 0x80 {
			out = append(out, fmt.Sprintf("%q imitates %q", string(r), c))
		}
	}
	return out
}
