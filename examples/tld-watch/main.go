// TLD watch: the real-time countermeasure of Section 4.2. Registries
// publish their zone files daily; a defender diffs consecutive
// snapshots and screens every *newly registered* IDN against the
// reference list, so a phishing homograph is flagged the day it
// appears — the paper measures detection at 0.07 s per reference,
// fast enough to block on sight.
//
// This example writes two zone snapshots (yesterday's and today's,
// where today adds benign registrations plus a handful of fresh
// homographs), then runs the watch cycle: parse → diff → extract IDNs
// → detect → report.
//
//	go run ./examples/tld-watch
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/punycode"
	"repro/internal/zonefile"
)

func main() {
	log.Println("building homoglyph database...")
	fw, err := shamfinder.New(shamfinder.Config{FontScope: shamfinder.FontFast})
	if err != nil {
		log.Fatal(err)
	}
	refs := []string{"google", "paypal", "binance", "wikipedia", "netflix"}
	det := fw.NewDetector(refs)

	dir, err := os.MkdirTemp("", "tldwatch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	yesterdayPath := filepath.Join(dir, "com-day1.zone")
	todayPath := filepath.Join(dir, "com-day2.zone")
	if err := writeSnapshots(fw, yesterdayPath, todayPath); err != nil {
		log.Fatal(err)
	}

	// --- the watch cycle a defender runs daily ---
	yesterday, err := loadZone(yesterdayPath)
	if err != nil {
		log.Fatal(err)
	}
	today, err := loadZone(todayPath)
	if err != nil {
		log.Fatal(err)
	}
	added := newRegistrations(yesterday, today)
	newIDNs := shamfinder.ExtractIDNs(added)
	log.Printf("diff: %d new registrations, %d of them IDNs", len(added), len(newIDNs))

	start := time.Now()
	alerts := 0
	for _, domain := range newIDNs {
		// DetectDomain splits the FQDN itself (root dot tolerated), so
		// the same watch loop serves a .com, .net or IDN-TLD zone.
		for _, m := range det.DetectDomain(domain) {
			alerts++
			fmt.Printf("ALERT: new registration %s (%s) is a homograph of %s\n",
				domain, m.Unicode, m.Imitated())
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\nscreened %d new IDNs against %d references in %v (%s/IDN) — %d alerts\n",
		len(newIDNs), len(refs), elapsed.Round(time.Microsecond),
		(elapsed / time.Duration(max(1, len(newIDNs)))).Round(time.Microsecond), alerts)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// loadZone parses a zone file into its registered domain set.
func loadZone(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	z, err := zonefile.Parse(f, "")
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	set := make(map[string]bool)
	for _, name := range z.DomainNames() {
		set[strings.TrimSuffix(name, ".")] = true
	}
	return set, nil
}

// newRegistrations returns today's domains absent yesterday, sorted by
// the zone's order of appearance.
func newRegistrations(yesterday, today map[string]bool) []string {
	var out []string
	for d := range today {
		if !yesterday[d] {
			out = append(out, d)
		}
	}
	// Deterministic order for the demo output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// writeSnapshots fabricates two daily zone files. Day 2 adds benign
// names, benign IDNs, and three fresh homographs built from the
// framework's own homoglyph database.
func writeSnapshots(fw *shamfinder.Framework, day1, day2 string) error {
	base := []string{
		"example", "established", "xn--bcher-kva", // bücher: benign IDN
		"oldnews", "shop", "blog",
	}
	added := []string{"startup", "xn--caf-dma"} // café: benign IDN

	// Fresh homographs of three protected brands, one substitution each.
	for _, target := range []string{"google", "paypal", "binance"} {
		runes := []rune(target)
		glyphs := fw.Homoglyphs(runes[0])
		if len(glyphs) == 0 {
			continue
		}
		runes[0] = glyphs[0]
		ace, err := punycode.ToASCIILabel(string(runes))
		if err != nil {
			return err
		}
		added = append(added, ace)
	}

	write := func(path string, labels []string) error {
		var sb strings.Builder
		sb.WriteString("$ORIGIN com.\n$TTL 300\n@ IN SOA a.gtld-servers.net. nstld.example. 1 2 3 4 5\n")
		for _, l := range labels {
			sb.WriteString(l + " IN NS ns1." + l + ".com.\n")
		}
		return os.WriteFile(path, []byte(sb.String()), 0o644)
	}
	if err := write(day1, base); err != nil {
		return err
	}
	return write(day2, append(append([]string{}, base...), added...))
}
