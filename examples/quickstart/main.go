// Quickstart: build the homoglyph database, detect a homograph, and
// print the warning a browser extension would show (paper Figure 12).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Build the framework: SimChar computed from the built-in font,
	// united with the UC confusables list. FontFast skips the CJK and
	// Hangul bulk so this demo starts in a couple of seconds.
	fw, err := shamfinder.New(shamfinder.Config{FontScope: shamfinder.FontFast})
	if err != nil {
		log.Fatal(err)
	}

	// The reference list is normally the Alexa top sites; any brand
	// you want to protect works.
	det := fw.NewDetector([]string{"google", "paypal", "wikipedia"})

	// A user clicks this link. Is it what it looks like? The whole
	// FQDN goes in — any TLD works, .net or xn--p1ai as readily as .com.
	suspicious := "xn--ggle-0nda.com" // gοοgle.com (Greek omicron ×2)
	uni, err := shamfinder.ToUnicode(suspicious)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checking %s (%s)\n\n", suspicious, uni)

	matches := det.DetectDomain(suspicious)
	if len(matches) == 0 {
		fmt.Println("no homograph detected")
		return
	}
	for _, m := range matches {
		fmt.Printf("HOMOGRAPH of %s\n", m.Imitated())
		for _, d := range m.Diffs {
			fmt.Printf("  position %d: %q imitates %q (flagged by %s)\n",
				d.Pos, string(d.Got), string(d.Want), d.Source)
		}
		fmt.Println()
		// The full warning context — what Figure 12 renders.
		fmt.Println(fw.Warn(m).Text())
	}

	// Reversion: map the lookalike back to the original, even without
	// knowing the reference in advance (paper Section 6.4).
	fmt.Printf("revert(%q) = %q\n", "göögle", fw.Revert("göögle"))
}
