// Package shamfinder is the public facade of the ShamFinder
// reproduction: an automated framework for detecting IDN homographs
// (Suzuki et al., ACM IMC 2019).
//
// The framework has two halves. The first builds the homoglyph
// database: SimChar, computed automatically from a bitmap font by
// pairwise glyph comparison, united with UC, the Unicode consortium's
// hand-maintained confusables list restricted to IDNA-permitted code
// points. The second half is the detector (the paper's Algorithm 1):
// given reference domain names and a set of registered IDNs, it finds
// the IDNs that are character-for-character confusable with a
// reference, pinpointing each substituted character so a countermeasure
// can explain exactly what was swapped (the paper's Figure 12 warning).
//
// Quickstart:
//
//	sf, err := shamfinder.New(shamfinder.Config{})
//	if err != nil { ... }
//	det := sf.NewDetector([]string{"google", "facebook"})
//	matches := det.DetectDomain("xn--ggle-55da.net") // gооgle, any TLD
//	for _, m := range matches {
//	    fmt.Println(sf.Warn(m).Text()) // "did you mean google.net?"
//	}
package shamfinder

import (
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/confusables"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/fontgen"
	"repro/internal/hexfont"
	"repro/internal/homoglyph"
	"repro/internal/punycode"
	"repro/internal/simchar"
	"repro/internal/snapshot"
	"repro/internal/ucd"
)

// Source selects which homoglyph databases the detector consults.
type Source = homoglyph.Source

// Database sources; the default (SourceBoth) is the paper's UC ∪
// SimChar configuration.
const (
	SourceUC      = homoglyph.SourceUC
	SourceSimChar = homoglyph.SourceSimChar
	SourceBoth    = homoglyph.SourceUC | homoglyph.SourceSimChar
)

// Match is one detected IDN homograph.
type Match = core.Match

// CharDiff pinpoints one substituted character within a match.
type CharDiff = core.CharDiff

// Backend selects a detection backend: the per-(length,position)
// posting-list index, the TR39 whole-label skeleton index, or both.
type Backend = core.Backend

// Detection backends. The posting backend pinpoints per-character
// substitutions but only sees same-length homographs; the skeleton
// backend catches many-to-one confusions ("rn"→"m", "vv"→"w") by
// whole-label prototype equality; BackendBoth unions them, tagging
// each match with the backend(s) that found it.
const (
	BackendPostings = core.BackendPostings
	BackendSkeleton = core.BackendSkeleton
	BackendBoth     = core.BackendBoth
)

// ParseBackend parses a backend name: "postings", "skeleton", "both".
// The empty string means BackendPostings.
func ParseBackend(s string) (Backend, error) { return core.ParseBackend(s) }

// Warning is the user-facing countermeasure context of Section 7.2.
type Warning = core.Warning

// Config controls database construction.
type Config struct {
	// FontPath loads a GNU Unifont .hex file from disk. Empty means
	// the built-in synthetic font (see DESIGN.md §1 for why a
	// synthetic font preserves the pipeline's behaviour offline).
	FontPath string
	// FontScope limits the synthetic font's coverage. FontFull (the
	// default) covers every generated block; FontFast skips the CJK
	// and Hangul bulk for quick starts and tests.
	FontScope FontScope
	// Threshold is the SimChar pixel-distance cutoff Δ. Zero means
	// the paper's validated θ=4.
	Threshold int
	// MinPixels is the sparse-glyph elimination floor of SimChar
	// Step III. Zero means the paper's 10.
	MinPixels int
	// Sources picks the databases to consult. Zero means SourceBoth.
	Sources Source
	// ExtraStyles builds additional synthetic fonts with these style
	// seeds and merges their SimChar databases into the primary one —
	// the paper's Section 7.1 multi-font extension. Ignored when
	// FontPath is set.
	ExtraStyles []uint64
}

// FontScope selects synthetic-font coverage.
type FontScope int

// Font scopes.
const (
	FontFull FontScope = iota // every synthetic block (≈42k glyphs)
	FontFast                  // skip CJK and Hangul (fast tests)
)

// Framework bundles the built databases, the font they came from, and
// the build timings.
type Framework struct {
	db      *homoglyph.DB
	font    *hexfont.Font
	timings simchar.Timings
}

// New builds the framework per cfg. Building the full synthetic font
// and scanning it takes a few seconds; reuse the result.
func New(cfg Config) (*Framework, error) {
	var font *hexfont.Font
	switch {
	case cfg.FontPath != "":
		f, err := os.Open(cfg.FontPath)
		if err != nil {
			return nil, fmt.Errorf("shamfinder: opening font: %w", err)
		}
		defer f.Close()
		font, err = hexfont.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("shamfinder: parsing font: %w", err)
		}
	case cfg.FontScope == FontFast:
		font = fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
	default:
		font = fontgen.Full()
	}
	return NewFromFont(font, cfg)
}

// NewFromFont builds the framework over an already-loaded font.
func NewFromFont(font *hexfont.Font, cfg Config) (*Framework, error) {
	opt := simchar.Options{Threshold: cfg.Threshold, MinPixels: cfg.MinPixels}
	idna := ucd.IDNASet()
	sim, timings := simchar.Build(font, idna, opt)
	if cfg.FontPath == "" && len(cfg.ExtraStyles) > 0 {
		dbs := []*simchar.DB{sim}
		for _, style := range cfg.ExtraStyles {
			styled := fontgen.Generate(fontgen.Options{
				SkipCJK:    cfg.FontScope == FontFast,
				SkipHangul: cfg.FontScope == FontFast,
				StyleSeed:  style,
			})
			db, _ := simchar.Build(styled, idna, opt)
			dbs = append(dbs, db)
		}
		sim = simchar.Merge(dbs...)
	}
	uc := confusables.Default()
	sources := cfg.Sources
	if sources == 0 {
		sources = SourceBoth
	}
	return &Framework{
		db:      homoglyph.New(uc, sim, sources),
		font:    font,
		timings: timings,
	}, nil
}

// WriteSnapshot serializes the framework's fully compiled artifacts —
// and, when det is non-nil, that detector's posting-list index — as a
// versioned, checksummed binary snapshot. Loading one skips the font
// rasterization, the Section 3.3 Δ scan, and the index compilation
// entirely, collapsing seconds of cold start into milliseconds; see
// LoadSnapshot. The glyph source itself is not serialized (snapshots
// carry compiled results, not inputs), so a loaded framework's Font()
// is nil.
func (f *Framework) WriteSnapshot(w io.Writer, det *Detector) error {
	return snapshot.Write(w, f.db, detInner(det))
}

// SaveSnapshot is WriteSnapshot to a file path.
func (f *Framework) SaveSnapshot(path string, det *Detector) error {
	return snapshot.WriteFile(path, f.db, detInner(det))
}

func detInner(det *Detector) *core.Detector {
	if det == nil {
		return nil
	}
	return det.inner
}

// ReadSnapshot reconstructs a framework (and the embedded detector, nil
// if none was compiled in) from a snapshot stream. Detection results
// are byte-for-byte identical to the freshly built framework the
// snapshot was taken from.
func ReadSnapshot(r io.Reader) (*Framework, *Detector, error) {
	db, det, err := snapshot.Read(r)
	return loadSnapshot(db, det, err)
}

// LoadSnapshot is ReadSnapshot from a file path — the one-file cold
// start for workers, serverless handlers, and short-lived CLI runs.
func LoadSnapshot(path string) (*Framework, *Detector, error) {
	db, det, err := snapshot.ReadFile(path)
	return loadSnapshot(db, det, err)
}

func loadSnapshot(db *homoglyph.DB, det *core.Detector, err error) (*Framework, *Detector, error) {
	if err != nil {
		return nil, nil, err
	}
	fw := &Framework{db: db}
	if det == nil {
		return fw, nil, nil
	}
	return fw, &Detector{inner: det}, nil
}

// NormalizeZoneLine prepares one domain-list line for detection, in
// place and without allocating: ASCII whitespace is trimmed, one
// trailing root dot is dropped, and ASCII letters are lowercased. The
// whole FQDN is kept — any TLD, any label count — for the domain-aware
// detectors (DetectDomainBytes / DetectStreamBytes) to split; the seed
// pipeline's trailing-".com" strip made every other zone invisible.
//
// It reports false for blank lines and lines with no scannable
// homograph candidate: a candidate is an ACE label left of the final
// dot, a bare ACE label, or any non-ASCII byte. The position test
// matters in IDN-TLD zones (.xn--p1ai), where the TLD would otherwise
// qualify every plain line: those reject here, before the pooled-buffer
// copy and worker handoff, with zero work beyond one byte scan. The
// returned domain aliases line's storage.
//
// The rules live in internal/domain so the HTTP serving layer
// (internal/service) applies the exact same normalization to incoming
// queries — `serve` and `detect` can never disagree on folding or the
// root dot.
func NormalizeZoneLine(line []byte) ([]byte, bool) {
	return domain.NormalizeZoneLine(line)
}

// NormalizeZoneLineAll is NormalizeZoneLine without the ACE/non-ASCII
// candidate gate: every non-blank name is kept. Pair it with the
// skeleton backend, whose many-to-one targets ("rnicrosoft.com") are
// pure ASCII and would be rejected by the posting backend's gate.
func NormalizeZoneLineAll(line []byte) ([]byte, bool) {
	return domain.NormalizeZoneLineAll(line)
}

// DB exposes the underlying homoglyph database for advanced callers
// (the measurement pipeline in cmd/experiments).
func (f *Framework) DB() *homoglyph.DB { return f.db }

// Font exposes the glyph source.
func (f *Framework) Font() *hexfont.Font { return f.font }

// BuildTimings reports how long each SimChar construction stage took
// (the paper's Table 5).
func (f *Framework) BuildTimings() simchar.Timings { return f.timings }

// NewDetector builds an Algorithm 1 detector over reference labels
// (registrable labels with the public suffix removed, e.g. "google" —
// see Registrable for the co.uk-aware split).
func (f *Framework) NewDetector(references []string) *Detector {
	return &Detector{inner: core.NewDetector(f.db, references)}
}

// Confusable reports whether two characters are homoglyphs under the
// configured sources, and which database vouches for the pair.
func (f *Framework) Confusable(a, b rune) (bool, Source) {
	return f.db.Confusable(a, b)
}

// Homoglyphs lists the configured databases' homoglyphs of r.
func (f *Framework) Homoglyphs(r rune) []rune { return f.db.Homoglyphs(r) }

// Revert maps an IDN label back to the plausible original by replacing
// every homoglyph with its canonical (usually Basic Latin) character —
// Section 6.4's tracing of targeted originals.
func (f *Framework) Revert(label string) string { return f.db.Revert(label) }

// RevertDomain maps a homograph FQDN (ACE or Unicode form) to the
// domain it plausibly imitates: the registrable label is decoded,
// reverted through Revert, and the public suffix reattached —
// "www.xn--ggle-55da.co.uk" → "google.co.uk". Reports false when the
// registrable label does not decode. This is the reverter the triage
// pipeline's brand-redirect classification and `shamfinder revert`
// share.
func (f *Framework) RevertDomain(fqdn string) (string, bool) {
	label, tld := domain.Registrable(fqdn)
	uni, err := punycode.ToUnicodeLabel(label)
	if err != nil {
		return "", false
	}
	reverted := f.Revert(uni)
	if tld != "" {
		reverted += "." + tld
	}
	return reverted, true
}

// Warn builds the Figure 12 warning context for a detected match.
func (f *Framework) Warn(m Match) Warning { return core.BuildWarning(m) }

// Detector wraps the core detection engine.
type Detector struct {
	inner *core.Detector
}

// DetectLabel checks one IDN label (ACE "xn--..." or Unicode form,
// TLD removed) against every reference, returning all matches. The
// check runs over the candidate index, so cost scales with the match
// candidates, not the reference-list size. Safe for concurrent use.
func (d *Detector) DetectLabel(idnLabel string) []Match {
	return d.inner.DetectLabel(idnLabel)
}

// Detect scans a batch of domains (full FQDNs on any TLD, or bare IDN
// labels) across GOMAXPROCS workers, returning matches sorted by
// (FQDN, reference).
func (d *Detector) Detect(domains []string) []Match {
	return d.inner.Detect(domains)
}

// DetectParallel is Detect with an explicit worker count (≤ 0 means
// GOMAXPROCS). Output is deterministic regardless of worker count.
func (d *Detector) DetectParallel(domains []string, workers int) []Match {
	return d.inner.DetectParallel(domains, workers)
}

// DetectStream scans domains arriving on in across workers (≤ 0 means
// GOMAXPROCS), sending matches on the returned channel until in is
// drained — the zone-scale entry point: per-worker buffers are reused,
// so steady-state allocation is O(matches). Cross-domain match order is
// not deterministic; use SortMatches for the batch ordering.
func (d *Detector) DetectStream(in <-chan string, workers int) <-chan Match {
	return d.inner.DetectStream(in, workers)
}

// DetectLabelBytes is DetectLabel over a reused line buffer: nothing is
// retained from label and the miss path allocates nothing, so a feeder
// can recycle one buffer per in-flight line.
func (d *Detector) DetectLabelBytes(label []byte) []Match {
	return d.inner.DetectLabelBytes(label)
}

// DetectDomain checks a dotted FQDN on any TLD — "xn--ggle-55da.net",
// "www.xn--ggle-55da.com", "xn--80ak6aa92e.xn--p1ai", "gооgle.co.uk" —
// scanning every candidate label (ACE or non-ASCII) against the
// references. Matches carry the FQDN and its public suffix; see
// Match.Imitated for the "google.net"-style rendering.
func (d *Detector) DetectDomain(fqdn string) []Match {
	return d.inner.DetectDomain(fqdn)
}

// DetectDomainBytes is DetectDomain over a reused line buffer (zero
// allocation when the domain matches nothing) — the primitive a zone
// feeder pairs with NormalizeZoneLine.
func (d *Detector) DetectDomainBytes(fqdn []byte) []Match {
	return d.inner.DetectDomainBytes(fqdn)
}

// DetectLabelBackend is DetectLabel with an explicit backend choice.
func (d *Detector) DetectLabelBackend(idnLabel string, be Backend) []Match {
	return d.inner.DetectLabelBackend(idnLabel, be)
}

// DetectDomainBackend is DetectDomain with an explicit backend choice.
// Note the skeleton backend also scans pure-ASCII labels — feeders
// should pair it with NormalizeZoneLineAll, not NormalizeZoneLine.
func (d *Detector) DetectDomainBackend(fqdn string, be Backend) []Match {
	return d.inner.DetectDomainBackend(fqdn, be)
}

// DetectDomainBytesBackend is DetectDomainBytes with an explicit
// backend choice, zero-allocation on the miss path for every backend.
func (d *Detector) DetectDomainBytesBackend(fqdn []byte, be Backend) []Match {
	return d.inner.DetectDomainBytesBackend(fqdn, be)
}

// DetectStreamBytes is DetectStream for pooled line buffers: each *[]byte
// drained from in is handed back to recycle (when non-nil) as soon as its
// label has been scanned, making the whole line→match pipeline
// allocation-free in steady state on the miss path.
func (d *Detector) DetectStreamBytes(in <-chan *[]byte, workers int, recycle *sync.Pool) <-chan Match {
	return d.inner.DetectStreamBytes(in, workers, recycle)
}

// DetectStreamBytesBackend is DetectStreamBytes with an explicit
// backend choice for every scanned line.
func (d *Detector) DetectStreamBytesBackend(in <-chan *[]byte, workers int, recycle *sync.Pool, be Backend) <-chan Match {
	return d.inner.DetectStreamBytesBackend(in, workers, recycle, be)
}

// SortMatches sorts matches into the deterministic batch order (IDN,
// then reference), e.g. after collecting a DetectStream.
func SortMatches(matches []Match) { core.SortMatches(matches) }

// Revert maps a homograph label to its most plausible original.
func (d *Detector) Revert(idnLabel string) (string, error) {
	return d.inner.Revert(idnLabel)
}

// References returns the reference labels, length-bucketed order.
func (d *Detector) References() []string { return d.inner.References() }

// ToASCII converts a Unicode domain to its IDNA ACE form.
func ToASCII(domain string) (string, error) { return punycode.ToASCII(domain) }

// ToUnicode converts an ACE domain to its Unicode form.
func ToUnicode(domain string) (string, error) { return punycode.ToUnicode(domain) }

// IsIDN reports whether any label of the domain carries the "xn--" ACE
// prefix.
func IsIDN(name string) bool { return punycode.IsIDN(name) }

// Registrable splits a domain name into its registrable label — the
// unit references index on — and its public suffix: ("amazon", "co.uk")
// for "amazon.co.uk", ("google", "com") for "www.google.com". A bare
// label returns (label, "").
func Registrable(name string) (label, suffix string) {
	return domain.Registrable(name)
}

// ExtractIDNs filters a domain list to the IDNs — the paper's Step 2.
// Two passes, one exact-size allocation: a zone-scale list is ~0.7%
// IDNs, so growing the output by append would allocate (and copy)
// log₂(hits) times for nothing, while sizing it to len(domains) would
// waste two orders of magnitude of memory. The IsIDN test itself is
// allocation-free, so the count pass costs only the scan.
func ExtractIDNs(domains []string) []string {
	n := 0
	for _, d := range domains {
		if IsIDN(d) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for _, d := range domains {
		if IsIDN(d) {
			out = append(out, d)
		}
	}
	return out
}

// ExtractIDNsBytes is ExtractIDNs for feeders that hold zone lines as
// byte slices: the output aliases the input's backing arrays (nothing
// is copied), so the only allocation is the exact-size result slice —
// per-hit allocation on zone-scale input drops to zero.
func ExtractIDNsBytes(domains [][]byte) [][]byte {
	n := 0
	for _, d := range domains {
		if punycode.IsIDNBytes(d) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([][]byte, 0, n)
	for _, d := range domains {
		if punycode.IsIDNBytes(d) {
			out = append(out, d)
		}
	}
	return out
}

// WriteSimChar serialises the built SimChar database.
func (f *Framework) WriteSimChar(w io.Writer) error {
	return f.db.SimChar().Write(w)
}
