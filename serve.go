package shamfinder

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/jobstore"
	"repro/internal/reflist"
	"repro/internal/service"
)

// Engine is the hot-swappable serving engine: it holds the current
// (immutable) Detector behind an atomic pointer and replaces it
// wholesale — epoch-versioned, with in-flight queries finishing on the
// state they started with. It is the long-running counterpart to
// NewDetector's build-once model: reference lists and snapshots change
// daily in the paper's operational pipeline, and an Engine absorbs
// those updates with one pointer swap instead of a process restart.
type Engine struct {
	inner *core.Engine
}

// NewEngine builds a detector over references and wraps it as epoch 1
// of a hot-swappable engine.
func (f *Framework) NewEngine(references []string) *Engine {
	return &Engine{inner: core.NewEngine(core.NewDetector(f.db, references))}
}

// EngineFor wraps an already-built detector (for example one embedded
// in a loaded snapshot) as epoch 1 of an engine.
func EngineFor(det *Detector) *Engine {
	return &Engine{inner: core.NewEngine(det.inner)}
}

// Epoch returns the engine's current state version. Epochs start at 1
// and advance by exactly one per swap.
func (e *Engine) Epoch() uint64 { return e.inner.Epoch() }

// Detector returns the current frozen detector. It stays valid (for
// its epoch) even after a later swap.
func (e *Engine) Detector() *Detector { return &Detector{inner: e.inner.Detector()} }

// Swap installs det as the new serving state and returns its epoch.
// Queries already running finish on the previous state; new queries
// observe det.
func (e *Engine) Swap(det *Detector) uint64 { return e.inner.Swap(det.inner) }

// Rebuild compiles a fresh detector for references off the engine's
// homoglyph database — on the calling goroutine, while queries
// continue on the old state — then swaps it in, returning the new
// epoch.
func (e *Engine) Rebuild(references []string) uint64 { return e.inner.Rebuild(references) }

// DetectDomain scans one FQDN against the current state, reporting
// the epoch the answer is valid for.
func (e *Engine) DetectDomain(fqdn string) ([]Match, uint64) {
	return e.inner.DetectDomain(fqdn)
}

// DetectDomainBytes is DetectDomain over a reused line buffer (zero
// allocation on the miss path).
func (e *Engine) DetectDomainBytes(fqdn []byte) ([]Match, uint64) {
	return e.inner.DetectDomainBytes(fqdn)
}

// DetectDomainBackend is DetectDomain with an explicit backend choice.
func (e *Engine) DetectDomainBackend(fqdn string, be Backend) ([]Match, uint64) {
	return e.inner.DetectDomainBackend(fqdn, be)
}

// DetectDomainBytesBackend is DetectDomainBytes with an explicit
// backend choice.
func (e *Engine) DetectDomainBytesBackend(fqdn []byte, be Backend) ([]Match, uint64) {
	return e.inner.DetectDomainBytesBackend(fqdn, be)
}

// ServeOptions configures Serve.
type ServeOptions struct {
	// Addr is the listen address; empty means "127.0.0.1:8080".
	Addr string
	// SnapshotPath cold-starts the engine from a compiled snapshot
	// (milliseconds) instead of building the font + SimChar + UC
	// pipeline. The snapshot must embed a detector unless RefsPath or
	// References supplies one.
	SnapshotPath string
	// RefsPath loads the reference list (plain list or rank CSV) the
	// detector protects. With SnapshotPath it overrides any embedded
	// detector.
	RefsPath string
	// References is an inline reference list; used when RefsPath is
	// empty.
	References []string
	// Watch > 0 polls SnapshotPath's mtime at that interval and
	// hot-swaps the engine when the file changes — zero-downtime
	// artifact rollover from a compile cron.
	Watch time.Duration
	// Build configures the framework build when SnapshotPath is empty.
	Build Config
	// MaxInFlight bounds concurrently served detection requests;
	// overload sheds with 503. 0 means the service default.
	MaxInFlight int
	// Backend is the default detection backend for requests that do not
	// name one. The zero value means BackendPostings.
	Backend Backend
	// JobDir, when non-empty, makes /v1/survey jobs durable: each job's
	// manifest and record log live under this directory, and jobs a
	// crash interrupted resume on startup with byte-identical output.
	JobDir string
	// SurveyTTL evicts finished survey jobs (memory and JobDir) this
	// long after they finish; 0 disables the TTL (the finished-jobs cap
	// still bounds retention).
	SurveyTTL time.Duration
	// SurveyKeep bounds retained finished survey jobs (0 = default 32).
	SurveyKeep int
	// SurveyStall is the per-job watchdog: a survey whose pipeline
	// counters freeze this long is cancelled and marked failed
	// (retryable). 0 disables the watchdog.
	SurveyStall time.Duration
	// Logf receives operational log lines; nil means silent.
	Logf func(format string, args ...any)
	// OnListen, when non-nil, is called with the bound address before
	// serving — the hook tests (and port-0 callers) learn the actual
	// port through.
	OnListen func(addr net.Addr)
}

// Serve runs the hot-swappable detection service until ctx is
// cancelled: engine construction (snapshot load or full build), the
// HTTP API of internal/service (POST /v1/detect, GET /v1/explain,
// POST /v1/reload, GET /healthz, GET /metrics), optional snapshot
// watching, and graceful drain on shutdown. It replaces the
// build-detect-exit CLI cycle for deployments that need detection to
// stay up while reference lists and zone snapshots change underneath
// it.
func Serve(ctx context.Context, opt ServeOptions) error {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Capture the snapshot's mtime BEFORE loading it: if a compile cron
	// renames a fresh artifact into place during the load, the watcher's
	// baseline is older than the file and the first poll picks it up —
	// never the other way around (a newer-baseline race would serve a
	// stale detector until the next artifact landed).
	var snapMtime time.Time
	if opt.SnapshotPath != "" {
		if st, err := os.Stat(opt.SnapshotPath); err == nil {
			snapMtime = st.ModTime()
		}
	}
	engine, refs, err := buildEngine(opt, logf)
	if err != nil {
		return err
	}
	surveyCfg := service.SurveyConfig{
		JobTTL:       opt.SurveyTTL,
		KeepFinished: opt.SurveyKeep,
		StallTimeout: opt.SurveyStall,
	}
	if opt.JobDir != "" {
		store, err := jobstore.Open(opt.JobDir)
		if err != nil {
			return fmt.Errorf("shamfinder: job dir: %w", err)
		}
		surveyCfg.Store = store
	}
	srv := service.New(service.Config{
		Engine:      engine.inner,
		MaxInFlight: opt.MaxInFlight,
		Backend:     opt.Backend,
		Survey:      surveyCfg,
		Logf:        logf,
	})
	// Resume whatever a previous process left behind BEFORE serving
	// traffic: interrupted jobs relaunch (bounded by the running cap),
	// finished ones republish, corrupt manifests quarantine loudly.
	if err := srv.RecoverSurveys(); err != nil {
		return fmt.Errorf("shamfinder: recovering survey jobs: %w", err)
	}
	addr := opt.Addr
	if addr == "" {
		addr = "127.0.0.1:8080"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shamfinder: listening on %s: %w", addr, err)
	}
	if opt.OnListen != nil {
		opt.OnListen(ln.Addr())
	}
	det := engine.Detector()
	logf("serving on %s: epoch %d, %d references", ln.Addr(), engine.Epoch(), det.inner.NumReferences())
	if opt.Watch > 0 && opt.SnapshotPath != "" {
		// With an explicit reference list, the list is pinned across
		// artifact rollovers: each new snapshot contributes its homoglyph
		// DB and the watcher rebuilds the detector over it from these
		// refs — a nightly recompile must never silently replace the
		// operator's list with the artifact's embedded one.
		go srv.WatchSnapshot(ctx, service.WatchConfig{
			Path:         opt.SnapshotPath,
			Interval:     opt.Watch,
			Loaded:       snapMtime,
			OverrideRefs: refs,
		})
	}
	return srv.Serve(ctx, ln)
}

// buildEngine resolves the serving engine from the fast path (compiled
// snapshot) or the full build, honouring the same precedence the CLI's
// loadEngine uses: an explicit reference list overrides a snapshot's
// embedded detector. It also returns that explicit list (nil when the
// embedded detector is serving) so the snapshot watcher can pin it
// across artifact rollovers.
func buildEngine(opt ServeOptions, logf func(string, ...any)) (*Engine, []string, error) {
	var refs []string
	if opt.RefsPath != "" {
		var err error
		if refs, err = reflist.Load(opt.RefsPath); err != nil {
			return nil, nil, fmt.Errorf("shamfinder: loading refs: %w", err)
		}
		// An explicitly named list that parses to nothing must fail
		// loudly here, like /v1/reload does — silently serving a
		// snapshot's embedded detector instead would leave the operator
		// believing the new list is live.
		if len(refs) == 0 {
			return nil, nil, fmt.Errorf("shamfinder: reference list %s is empty", opt.RefsPath)
		}
	} else if len(opt.References) > 0 {
		// Inline references reduce exactly like file lines (lowercase,
		// registrable label), so "paypal.com" protects "paypal" on
		// every input path.
		refs = reflist.Labels(opt.References)
		if len(refs) == 0 {
			return nil, nil, fmt.Errorf("shamfinder: inline references reduce to no registrable labels")
		}
	}
	if opt.SnapshotPath != "" {
		start := time.Now()
		fw, det, err := LoadSnapshot(opt.SnapshotPath)
		if err != nil {
			return nil, nil, fmt.Errorf("shamfinder: loading snapshot %s: %w", opt.SnapshotPath, err)
		}
		if len(refs) > 0 {
			det = fw.NewDetector(refs)
		}
		if det == nil {
			return nil, nil, fmt.Errorf("shamfinder: snapshot %s embeds no detector; pass refs or recompile with -refs", opt.SnapshotPath)
		}
		logf("cold start from %s in %v", opt.SnapshotPath, time.Since(start).Round(time.Millisecond))
		return EngineFor(det), refs, nil
	}
	if len(refs) == 0 {
		return nil, nil, fmt.Errorf("shamfinder: serving needs a reference list (refs path, inline references, or a snapshot with an embedded detector)")
	}
	start := time.Now()
	fw, err := New(opt.Build)
	if err != nil {
		return nil, nil, err
	}
	logf("built framework in %v", time.Since(start).Round(time.Millisecond))
	return fw.NewEngine(refs), refs, nil
}
