//go:build !race

package shamfinder

const raceEnabled = false
