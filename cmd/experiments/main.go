// Command experiments regenerates every table and figure of the
// paper's evaluation and writes the paper-vs-measured record to
// EXPERIMENTS.md (or stdout).
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-refs N] [-fastfont] [-run table8,figure9] [-o EXPERIMENTS.md]
//
// With no -run filter all nineteen experiments execute in paper order.
// -scale multiplies the benign registry population (homograph counts
// are absolute; see DESIGN.md §1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 7, "deterministic seed for every stochastic choice")
		scale    = flag.Float64("scale", 0.002, "benign-corpus scale factor (paper = 1.0)")
		refs     = flag.Int("refs", 10000, "reference-list size (paper: Alexa top-10k)")
		fastfont = flag.Bool("fastfont", false, "skip CJK/Hangul font generation (Tables 1/2/4 shrink)")
		run      = flag.String("run", "", "comma-separated experiment ids (table1..table14, figure6/9/10, section4.2, section6.4); empty = all")
		out      = flag.String("o", "", "write EXPERIMENTS.md here; empty = stdout only")
	)
	flag.Parse()

	var filter map[string]bool
	if *run != "" {
		filter = make(map[string]bool)
		for _, name := range strings.Split(*run, ",") {
			filter[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}

	env := experiments.NewEnv(experiments.Options{
		Seed:     *seed,
		Scale:    *scale,
		RefCount: *refs,
		FastFont: *fastfont,
	})
	doc, err := experiments.RunAll(env, filter, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := doc.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", *out)
		return
	}
	if err := doc.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
