// Command confusablesgen deterministically regenerates the embedded
// synthetic confusables table (internal/confusables/confusables_data.txt)
// from the curated seeds and quota tables compiled into the binary, pinned
// to one Unicode version and stamped with a generation time. Data updates
// become reviewed diffs: CI reruns the generator and fails if the
// committed file differs from the regenerated one.
//
// With -generated-at keep (the default) the stamp is copied from the
// existing output file, so a no-change regeneration is byte-identical —
// exactly the property the CI `git diff --exit-code` gate needs.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/confusables"
	"repro/internal/snapshot"
)

func main() {
	var (
		out     = flag.String("out", "internal/confusables/confusables_data.txt", "output path ('-' for stdout)")
		version = flag.String("version", confusables.SyntheticUnicodeVersion, "pinned Unicode version to stamp")
		genAt   = flag.String("generated-at", "keep", "RFC 3339 generation stamp, or 'keep' to reuse the existing file's stamp")
	)
	flag.Parse()

	stamp := *genAt
	if stamp == "keep" {
		stamp = existingStamp(*out)
	}

	var buf bytes.Buffer
	if err := confusables.WriteGenerated(&buf, *version, stamp); err != nil {
		fmt.Fprintln(os.Stderr, "confusablesgen:", err)
		os.Exit(1)
	}
	if *out == "-" {
		if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "confusablesgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := snapshot.WriteFileAtomic(*out, buf.Bytes()); err != nil {
		fmt.Fprintln(os.Stderr, "confusablesgen:", err)
		os.Exit(1)
	}
	db := confusables.BuildSynthetic()
	fmt.Fprintf(os.Stderr, "confusablesgen: wrote %s (%d entries, Unicode %s)\n", *out, db.Len(), *version)
}

// existingStamp recovers the GeneratedAt header from the committed file,
// falling back to a fixed epoch stamp for a first-time generation so the
// output is still deterministic.
func existingStamp(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return "1970-01-01T00:00:00Z"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if v, ok := strings.CutPrefix(sc.Text(), "# GeneratedAt:"); ok {
			return strings.TrimSpace(v)
		}
		if !strings.HasPrefix(sc.Text(), "#") {
			break
		}
	}
	return "1970-01-01T00:00:00Z"
}
