// Command surveysim stands up the in-repo simulated measurement
// infrastructure as one long-running process, for driving `shamfinder
// survey` end to end from outside the test harness (the CI golden
// smoke, local experimentation):
//
//   - a deterministic synthetic .com registry with injected homographs,
//   - the authoritative DNS server loaded with its probe zone,
//   - the web simulator hosting every active homograph's site,
//   - the three Table 14 blacklist feeds, written as hosts files.
//
// It writes refs.txt (the reference list the homographs imitate),
// zone.txt (the domain list to detect over), hphosts.txt / gsb.txt /
// symantec.txt (the feeds) and — last, atomically — addrs.env with the
// bound listener addresses:
//
//	DNS=127.0.0.1:PORT
//	DOT=127.0.0.1:PORT
//	DOH=127.0.0.1:PORT
//	HTTP=127.0.0.1:PORT
//	HTTPS=127.0.0.1:PORT
//
// (DOT and DOH are the same authoritative data behind DNS-over-TLS and
// DNS-over-HTTPS listeners, for `-dns-transport dot|doh` runs) so a
// shell can wait for addrs.env, source it, and run:
//
//	shamfinder survey -fastfont -refs refs.txt -domains zone.txt \
//	  -resolver $DNS -http-addr $HTTP -https-addr $HTTPS \
//	  -blacklist hphosts=hphosts.txt -blacklist gsb=gsb.txt \
//	  -blacklist symantec=symantec.txt -o survey.jsonl
//
// Everything is seeded: the same -seed always produces the same
// registry, zone, feeds and site behaviour, so survey output diffs
// cleanly against a golden transcript. SIGINT/SIGTERM shuts down.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro"
	"repro/internal/blacklist"
	"repro/internal/dnsserver"
	"repro/internal/hostsim"
	"repro/internal/ranking"
	"repro/internal/registry"
	"repro/internal/websim"
)

func main() {
	seed := flag.Uint64("seed", 1337, "registry seed; everything derives deterministically from it")
	nrefs := flag.Int("nrefs", 3000, "reference-list size")
	scale := flag.Float64("scale", 0.0005, "registry scale (fraction of the paper's population)")
	benign := flag.Int("benign-zone", 25, "benign domains included in the probe zone")
	dir := flag.String("dir", ".", "directory for refs.txt, zone.txt, feed files and addrs.env")
	flag.Parse()
	if err := run(*seed, *nrefs, *scale, *benign, *dir); err != nil {
		log.Fatal(err)
	}
}

func run(seed uint64, nrefs int, scale float64, benign int, dir string) error {
	log.Println("surveysim: building homoglyph database (fast font)...")
	fw, err := shamfinder.New(shamfinder.Config{FontScope: shamfinder.FontFast})
	if err != nil {
		return err
	}
	refs := ranking.Generate(nrefs, seed, ranking.PaperAnchors())
	reg, err := registry.Generate(registry.Options{Seed: seed, Scale: scale, Refs: refs, DB: fw.DB()})
	if err != nil {
		return err
	}

	writeFile := func(name string, write func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile("refs.txt", func(w io.Writer) error {
		_, err := io.WriteString(w, strings.Join(refs.SLDs(nrefs), "\n")+"\n")
		return err
	}); err != nil {
		return err
	}
	if err := writeFile("zone.txt", reg.WriteDomainList); err != nil {
		return err
	}

	// Small filler keeps the feed files reviewable while preserving the
	// paper's shape: a big community feed, small commercial ones, the
	// рф-TLD entries inside hpHosts.
	feeds := blacklist.FromRegistry(reg, blacklist.FillerCounts{
		HpHosts: 1500, GSB: 150, Symantec: 60, RFDomains: 40,
	}, seed)
	for _, pair := range []struct {
		name string
		feed *blacklist.Feed
	}{{"hphosts.txt", feeds.HpHosts}, {"gsb.txt", feeds.GSB}, {"symantec.txt", feeds.Symantec}} {
		if err := writeFile(pair.name, pair.feed.Write); err != nil {
			return err
		}
	}

	store := dnsserver.NewStore()
	store.AddZone(reg.BuildProbeZone(benign))
	dns := dnsserver.NewServer(store)
	if err := dns.ListenAndServe("127.0.0.1:0"); err != nil {
		return err
	}
	defer dns.Close()
	// The encrypted listeners answer from the same store, so a survey
	// can run over udp, tcp, dot or doh against identical data.
	if err := dns.EnableDoT("127.0.0.1:0"); err != nil {
		return err
	}
	if err := dns.EnableDoH("127.0.0.1:0"); err != nil {
		return err
	}

	mapper, err := hostsim.NewMapper()
	if err != nil {
		return err
	}
	web := websim.NewServer()
	if err := web.Start(); err != nil {
		return err
	}
	defer web.Close()
	deployed := websim.Deploy(reg, web, mapper)

	// addrs.env goes last and lands atomically (rename), so its
	// existence means every listener above is live.
	env := fmt.Sprintf("DNS=%s\nDOT=%s\nDOH=%s\nHTTP=%s\nHTTPS=%s\n",
		dns.Addr(), dns.DoTAddr(), dns.DoHAddr(), web.HTTPAddr(), web.HTTPSAddr())
	tmp := filepath.Join(dir, ".addrs.env.tmp")
	if err := os.WriteFile(tmp, []byte(env), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addrs.env")); err != nil {
		return err
	}

	log.Printf("surveysim: %d homographs, %d sites deployed; DNS %s, HTTP %s, HTTPS %s",
		len(reg.Homographs), deployed, dns.Addr(), web.HTTPAddr(), web.HTTPSAddr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("surveysim: shutting down")
	return nil
}
