// Command shamlint runs the repo-invariant static-analysis pass: the
// durability, determinism, hot-path allocation, single-epoch,
// close-check and goroutine-hygiene contracts earlier PRs wrote in
// prose, mechanized over go/ast + go/types. Pure standard library.
//
// Usage:
//
//	shamlint [-C dir] [-rules] [packages...]
//
// Packages default to ./... relative to the module root. Exit status 1
// means findings; 2 means the load itself failed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module directory to analyze")
	rules := flag.Bool("rules", false, "print the rule set and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: shamlint [-C dir] [-rules] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shamlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.DefaultConfig())
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "shamlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
