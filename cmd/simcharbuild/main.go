// Command simcharbuild constructs the SimChar homoglyph database from
// a bitmap font and reports the per-stage timings of the paper's
// Table 5.
//
// Usage:
//
//	simcharbuild [-font unifont.hex] [-threshold 4] [-minpixels 10] [-fastfont] [-o simchar.txt]
//
// Without -font the built-in synthetic Unifont-format font is used
// (DESIGN.md §1 explains the substitution).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		fontPath  = flag.String("font", "", "GNU Unifont .hex file; empty = synthetic font")
		threshold = flag.Int("threshold", 0, "pixel-distance cutoff Δ (0 = paper's 4)")
		minPixels = flag.Int("minpixels", 0, "sparse-glyph floor (0 = paper's 10)")
		fast      = flag.Bool("fastfont", false, "skip CJK/Hangul in the synthetic font")
		out       = flag.String("o", "", "write the SimChar database here; empty = stdout")
	)
	flag.Parse()

	cfg := shamfinder.Config{
		FontPath:  *fontPath,
		Threshold: *threshold,
		MinPixels: *minPixels,
	}
	if *fast {
		cfg.FontScope = shamfinder.FontFast
	}
	start := time.Now()
	fw, err := shamfinder.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcharbuild:", err)
		os.Exit(1)
	}
	tim := fw.BuildTimings()
	fmt.Fprintf(os.Stderr, "Table 5 — time taken for constructing SimChar\n")
	fmt.Fprintf(os.Stderr, "  Generating images:              %v\n", tim.RasterizeImages)
	fmt.Fprintf(os.Stderr, "  Computing Δ for all the pairs:  %v (%d candidate pairs, %d comparisons saved by banding)\n",
		tim.ComputePairwise, tim.CandidatePairs, tim.ComparisonsSaved)
	fmt.Fprintf(os.Stderr, "  Eliminating sparse characters:  %v\n", tim.EliminateSparse)
	fmt.Fprintf(os.Stderr, "  Total (incl. font load):        %v\n", time.Since(start))
	fmt.Fprintf(os.Stderr, "  SimChar pairs:                  %d\n", fw.DB().SimChar().NumPairs())
	fmt.Fprintf(os.Stderr, "  SimChar characters:             %d\n", fw.DB().SimChar().Chars().Len())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simcharbuild:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := fw.WriteSimChar(w); err != nil {
		fmt.Fprintln(os.Stderr, "simcharbuild:", err)
		os.Exit(1)
	}
}
