package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestLoadRefsRoutesThroughReflist pins the CLI to the shared loader:
// the full parsing suite (CSV sniffing, multi-TLD registrable labels,
// comments) lives in internal/reflist, which the serve layer's
// /v1/reload endpoint shares — one implementation, one behaviour.
func TestLoadRefsRoutesThroughReflist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "refs.txt")
	if err := os.WriteFile(path, []byte("google.com\namazon.co.uk\n# note\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	refs, err := loadRefs(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"google", "amazon"}
	if !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
}
