package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestLoadRefsRoutesThroughReflist pins the CLI to the shared loader:
// the full parsing suite (CSV sniffing, multi-TLD registrable labels,
// comments) lives in internal/reflist, which the serve layer's
// /v1/reload endpoint shares — one implementation, one behaviour.
func TestLoadRefsRoutesThroughReflist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "refs.txt")
	if err := os.WriteFile(path, []byte("google.com\namazon.co.uk\n# note\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	refs, err := loadRefs(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"google", "amazon"}
	if !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
}

func TestLoadMatchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matches.txt")
	data := "# comment\n" +
		"xn--ggle-55da.com\tgoogle.com\tUC\n" +
		"XN--PYPAL-4VE.COM.\n" +
		"xn--ggle-55da.com\tduplicate.com\n" +
		"\n" +
		"xn--bare.net\tbare.net\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	inputs, err := loadMatchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 3 {
		t.Fatalf("inputs = %+v", inputs)
	}
	if inputs[0].FQDN != "xn--ggle-55da.com" || inputs[0].Reference != "google.com" || inputs[0].Source != "UC" {
		t.Errorf("input 0 = %+v", inputs[0])
	}
	if inputs[1].FQDN != "xn--pypal-4ve.com" || inputs[1].Reference != "" {
		t.Errorf("input 1 must be normalized: %+v", inputs[1])
	}
	if inputs[2].FQDN != "xn--bare.net" {
		t.Errorf("input 2 = %+v", inputs[2])
	}
}

func TestParseBlacklistFlags(t *testing.T) {
	if set, err := parseBlacklistFlags(nil); set != nil || err != nil {
		t.Fatalf("no flags: %v %v", set, err)
	}
	dir := t.TempDir()
	hp := filepath.Join(dir, "hp.txt")
	if err := os.WriteFile(hp, []byte("127.0.0.1 bad.com\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := parseBlacklistFlags([]string{"hphosts=" + hp})
	if err != nil {
		t.Fatal(err)
	}
	if !set.HpHosts.Contains("bad.com") || set.HpHosts.Name != "hpHosts" {
		t.Errorf("hpHosts = %+v", set.HpHosts)
	}
	if set.GSB.Len() != 0 || set.Symantec.Len() != 0 {
		t.Error("unnamed feeds must stay empty")
	}
	if _, err := parseBlacklistFlags([]string{"nope=" + hp}); err == nil {
		t.Error("unknown feed name must fail")
	}
	if _, err := parseBlacklistFlags([]string{"justapath"}); err == nil {
		t.Error("missing = must fail")
	}
}
