package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/service"
)

// cmdWatchZone runs the crash-safe continuous zone watch: stream each
// new zone generation against the durable seen-set, append only the
// added FQDNs (detections annotated) to the deltas journal, and
// optionally probe additions against a resolver and serve /metrics.
// Ctrl-C / SIGTERM exits cleanly; SIGKILL resumes from the checkpoint
// with no duplicated and no dropped deltas.
func cmdWatchZone(args []string) error {
	fs := flag.NewFlagSet("watch-zone", flag.ExitOnError)
	zone := fs.String("zone", "", "zone file to watch (required unless -status)")
	state := fs.String("state", "", "durable state directory: seen-set, checkpoint, deltas (required unless -status)")
	deltas := fs.String("deltas", "", "deltas output path; empty = STATE/deltas.out")
	snapPath := fs.String("snapshot", "", "cold-start the engine from a compiled snapshot")
	refsPath := fs.String("refs", "", "reference domain list (overrides the snapshot's embedded detector)")
	db := fs.String("db", "both", "homoglyph database when building fresh: uc, simchar or both")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation when building fresh")
	interval := fs.Duration("interval", 0, "zone polling cadence; 0 = 10s")
	once := fs.Bool("once", false, "run one delta scan, drain probes, and exit (cron mode)")
	resolver := fs.String("resolver", "", "probe each addition for NS/A/MX against this DNS server (host:port)")
	dnsTransport := fs.String("dns-transport", "udp", "probing transport: udp, tcp, dot or doh")
	addr := fs.String("addr", "", "also serve the HTTP API here; /metrics carries the watcher's health")
	throttle := fs.Int("throttle", 0, "cap scanning at this many zone lines per second; 0 = unthrottled")
	ckptEvery := fs.Int64("checkpoint-every", 0, "zone lines between durable checkpoints; 0 = 65536")
	minFrac := fs.Float64("min-zone-fraction", 0, "refuse a zone smaller than this fraction of the last generation; 0 = 0.5")
	surveyJobs := fs.String("survey-jobs", "", "batch journal deltas into durable survey jobs under this directory (needs -addr, excludes -once)")
	surveyBatch := fs.Int("survey-batch", 0, "cut a survey batch at this many pending deltas; 0 = 256")
	surveyAge := fs.Duration("survey-age", 0, "cut a smaller pending batch after this long; 0 = 30s")
	surveyStall := fs.Duration("survey-stall", 0, "fail a survey job whose pipeline freezes this long; 0 = no watchdog")
	surveySkipWeb := fs.Bool("survey-skip-web", false, "drop the web stage from batched surveys (DNS-only monitoring)")
	status := fs.Bool("status", false, "print a running watcher's health from http://ADDR/metrics and exit")
	fs.Parse(args)

	if *status {
		if *addr == "" {
			return fmt.Errorf("watch-zone: -status needs -addr (the running watcher's metrics address)")
		}
		return watchZoneStatus(*addr)
	}
	if *zone == "" || *state == "" {
		return fmt.Errorf("watch-zone: -zone and -state are required")
	}
	cfg, err := buildConfig(*fast, *db)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger := log.New(os.Stderr, "shamfinder: ", log.LstdFlags)
	return shamfinder.WatchZone(ctx, shamfinder.WatchZoneOptions{
		ZonePath:        *zone,
		StateDir:        *state,
		DeltasPath:      *deltas,
		SnapshotPath:    *snapPath,
		RefsPath:        *refsPath,
		Build:           cfg,
		Interval:        *interval,
		CheckpointEvery: *ckptEvery,
		ThrottleLPS:     *throttle,
		MinZoneFraction: *minFrac,
		Resolver:        *resolver,
		Transport:       *dnsTransport,
		Addr:            *addr,
		SurveyJobDir:    *surveyJobs,
		SurveyBatch:     *surveyBatch,
		SurveyAge:       *surveyAge,
		SurveyStall:     *surveyStall,
		SurveySkipWeb:   *surveySkipWeb,
		Once:            *once,
		Logf:            logger.Printf,
	})
}

// watchZoneStatus scrapes a running watcher's /metrics and prints the
// zonewatch health block — the operator's one-line answer to "is the
// watch healthy, and how far behind is it?".
func watchZoneStatus(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return fmt.Errorf("watch-zone: fetching metrics: %w", err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("watch-zone: decoding metrics: %w", err)
	}
	if st.ZoneWatch == nil {
		return fmt.Errorf("watch-zone: %s serves no zone watcher (started without watch-zone -addr?)", addr)
	}
	out, err := json.MarshalIndent(st.ZoneWatch, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	h := st.ZoneWatch
	if h.State != "ok" {
		return fmt.Errorf("watch-zone: watcher state is %q", h.State)
	}
	return nil
}
