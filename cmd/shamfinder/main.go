// Command shamfinder is the framework's CLI: detect IDN homographs in
// a domain list, serve detection as a long-running hot-swappable HTTP
// service, explain a single suspicious domain, revert a homograph to
// its plausible original, dump homoglyphs of a character, or compile
// the built databases into a binary snapshot so later runs cold-start
// in milliseconds instead of rebuilding the font + SimChar + UC
// pipeline.
//
// Usage:
//
//	shamfinder compile -o shamfinder.snap [-refs refs.txt] [-db uc|simchar|both]
//	shamfinder serve -snapshot shamfinder.snap [-addr 127.0.0.1:8080] [-watch 2s]
//	shamfinder detect -refs refs.txt [-domains zone.txt] [-db uc|simchar|both] [-workers N] [-json]
//	shamfinder detect -snapshot shamfinder.snap [-domains zone.txt]
//	shamfinder explain -refs refs.txt xn--ggle-55da.com
//	shamfinder revert xn--ggle-55da.com
//	shamfinder glyphs o
//
// refs.txt holds one reference domain per line (Alexa-style "rank,domain"
// CSV also accepted); references index on their registrable label, so
// amazon.co.uk protects "amazon" just as google.com protects "google".
// The domain list is read from -domains or stdin and may span any mix
// of TLDs — .com, .net, co.uk-style multi-label suffixes, ACE/IDN TLDs
// like xn--p1ai — with any label count per name. Detected domains are
// echoed in normalized form (lowercased, root dot dropped): the feeder
// lowercases lines in place and retains nothing per line, which is what
// keeps ingestion allocation-free at zone scale.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro"
	"repro/internal/reflist"
	"repro/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "compile":
		err = cmdCompile(args)
	case "serve":
		err = cmdServe(args)
	case "detect":
		err = cmdDetect(args)
	case "explain":
		err = cmdExplain(args)
	case "revert":
		err = cmdRevert(args)
	case "glyphs":
		err = cmdGlyphs(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shamfinder:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  shamfinder compile -o FILE [-refs FILE] [-db uc|simchar|both] [-fastfont]
  shamfinder serve   {-refs FILE | -snapshot FILE} [-addr HOST:PORT] [-watch DUR] [-max-inflight N] [-db uc|simchar|both] [-fastfont]
  shamfinder detect  {-refs FILE | -snapshot FILE} [-domains FILE] [-db uc|simchar|both] [-fastfont] [-workers N] [-json]
  shamfinder explain {-refs FILE | -snapshot FILE} [-fastfont] DOMAIN
  shamfinder revert  [-snapshot FILE] [-fastfont] DOMAIN
  shamfinder glyphs  [-snapshot FILE] [-fastfont] CHAR

domain lists may span any TLD (.com, .net, co.uk, xn--p1ai, ...); full
FQDNs are scanned label-aware and references index on their registrable
label (amazon.co.uk protects "amazon").

serve exposes the hot-swappable engine as an HTTP JSON API (POST
/v1/detect, GET /v1/explain, POST /v1/reload, GET /healthz, GET
/metrics); -watch polls the snapshot file and swaps new state in with
zero downtime.`)
}

func buildConfig(fast bool, db string) (shamfinder.Config, error) {
	cfg := shamfinder.Config{}
	if fast {
		cfg.FontScope = shamfinder.FontFast
	}
	switch strings.ToLower(db) {
	case "", "both":
		cfg.Sources = shamfinder.SourceBoth
	case "uc":
		cfg.Sources = shamfinder.SourceUC
	case "simchar":
		cfg.Sources = shamfinder.SourceSimChar
	default:
		return cfg, fmt.Errorf("unknown -db %q (want uc, simchar or both)", db)
	}
	return cfg, nil
}

func newFramework(fast bool, db string) (*shamfinder.Framework, error) {
	cfg, err := buildConfig(fast, db)
	if err != nil {
		return nil, err
	}
	return shamfinder.New(cfg)
}

// loadEngine resolves the framework and detector from a snapshot file
// (milliseconds) or a fresh build (seconds). With -snapshot, an
// explicit -refs overrides any embedded detector; -db is baked into the
// snapshot at compile time and the flag is ignored.
func loadEngine(snapPath, refsPath string, fast bool, db string, needDetector bool) (*shamfinder.Framework, *shamfinder.Detector, error) {
	if snapPath != "" {
		fw, det, err := shamfinder.LoadSnapshot(snapPath)
		if err != nil {
			return nil, nil, fmt.Errorf("loading snapshot %s: %w", snapPath, err)
		}
		if refsPath != "" {
			refs, err := loadRefs(refsPath)
			if err != nil {
				return nil, nil, fmt.Errorf("loading refs: %w", err)
			}
			det = fw.NewDetector(refs)
		}
		if needDetector && det == nil {
			return nil, nil, fmt.Errorf("snapshot %s embeds no detector; pass -refs or recompile with -refs", snapPath)
		}
		return fw, det, nil
	}
	if needDetector && refsPath == "" {
		return nil, nil, fmt.Errorf("need -refs FILE or -snapshot FILE")
	}
	fw, err := newFramework(fast, db)
	if err != nil {
		return nil, nil, err
	}
	var det *shamfinder.Detector
	if refsPath != "" {
		refs, err := loadRefs(refsPath)
		if err != nil {
			return nil, nil, fmt.Errorf("loading refs: %w", err)
		}
		det = fw.NewDetector(refs)
	}
	return fw, det, nil
}

// loadRefs reads reference labels from a plain list or rank CSV —
// shared with the serving layer's /v1/reload endpoint through
// internal/reflist, so a list hot-loaded over HTTP parses exactly as
// it does here. Each domain contributes its registrable label —
// suffix-aware, so amazon.co.uk indexes "amazon", not "amazon.co" —
// on any TLD.
func loadRefs(path string) ([]string, error) {
	return reflist.Load(path)
}

// cmdCompile builds the databases once and persists the compiled
// artifacts; every later run loads them in milliseconds.
func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	out := fs.String("o", "shamfinder.snap", "output snapshot path")
	refsPath := fs.String("refs", "", "embed a detector for this reference list (optional)")
	db := fs.String("db", "both", "homoglyph database: uc, simchar or both")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	fw, err := newFramework(*fast, *db)
	if err != nil {
		return err
	}
	var det *shamfinder.Detector
	nrefs := 0
	if *refsPath != "" {
		refs, err := loadRefs(*refsPath)
		if err != nil {
			return fmt.Errorf("loading refs: %w", err)
		}
		det = fw.NewDetector(refs)
		nrefs = len(det.References())
	}
	if err := fw.SaveSnapshot(*out, det); err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "compiled %s: %d bytes, %d homoglyph chars, %d references\n",
		*out, st.Size(), fw.DB().Chars().Len(), nrefs)
	return nil
}

// cmdServe runs the long-lived detection service: the hot-swappable
// engine behind the HTTP JSON API, with optional snapshot watching.
// Ctrl-C / SIGTERM drains in-flight requests and exits cleanly.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	snapPath := fs.String("snapshot", "", "cold-start from a compiled snapshot (and the -watch reload source)")
	refsPath := fs.String("refs", "", "reference domain list (overrides the snapshot's embedded detector)")
	watch := fs.Duration("watch", 0, "poll the snapshot file at this interval and hot-swap on change (e.g. 2s); 0 = off")
	db := fs.String("db", "both", "homoglyph database when building fresh: uc, simchar or both")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation when building fresh")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrent detection requests before shedding; 0 = default")
	fs.Parse(args)
	if *watch > 0 && *snapPath == "" {
		return fmt.Errorf("serve: -watch needs -snapshot (it polls the snapshot file)")
	}
	cfg, err := buildConfig(*fast, *db)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger := log.New(os.Stderr, "shamfinder: ", log.LstdFlags)
	return shamfinder.Serve(ctx, shamfinder.ServeOptions{
		Addr:         *addr,
		SnapshotPath: *snapPath,
		RefsPath:     *refsPath,
		Watch:        *watch,
		Build:        cfg,
		MaxInFlight:  *maxInFlight,
		Logf:         logger.Printf,
	})
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	refsPath := fs.String("refs", "", "reference domain list")
	snapPath := fs.String("snapshot", "", "load a compiled snapshot instead of building")
	domainsPath := fs.String("domains", "", "domain list to scan; empty = stdin")
	db := fs.String("db", "both", "homoglyph database: uc, simchar or both")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	workers := fs.Int("workers", 0, "detection workers; 0 = GOMAXPROCS")
	jsonOut := fs.Bool("json", false, "emit one JSON object per match (the serve API's wire format)")
	fs.Parse(args)
	_, det, err := loadEngine(*snapPath, *refsPath, *fast, *db, true)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if *domainsPath != "" {
		f, err := os.Open(*domainsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	// Stream the zone through the parallel engine: a feeder goroutine
	// pushes labels while workers detect, so scanning overlaps I/O and
	// memory scales with the IDNs (0.67% of a zone), not the zone.
	// Labels travel as pooled byte buffers that workers recycle after
	// each scan — with the in-place normalization and the engine's lazy
	// string materialization, a line that matches nothing allocates
	// nothing. Matches are sorted before printing, making the output
	// deterministic for any worker count.
	labels := make(chan *[]byte, 1024)
	pool := &sync.Pool{New: func() any { b := make([]byte, 0, 80); return &b }}
	scanned := 0
	var scanErr error
	go func() {
		defer close(labels)
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
		for sc.Scan() {
			label, ok := shamfinder.NormalizeZoneLine(sc.Bytes())
			if !ok {
				continue
			}
			scanned++
			bp := pool.Get().(*[]byte)
			*bp = append((*bp)[:0], label...)
			labels <- bp
		}
		scanErr = sc.Err()
	}()

	var matches []shamfinder.Match
	for m := range det.DetectStreamBytes(labels, *workers, pool) {
		matches = append(matches, m)
	}
	// The stream has drained, so the feeder is done: scanErr is safe to
	// read from here on.
	if scanErr != nil {
		return scanErr
	}
	shamfinder.SortMatches(matches)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *jsonOut {
		// One JSON object per match, in the exact wire format the serve
		// API's /v1/detect responds with (service.Match) — downstream
		// tooling parses one shape whether it scraped the CLI or the
		// HTTP endpoint.
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		for _, m := range matches {
			if err := enc.Encode(service.NewMatch(m)); err != nil {
				return err
			}
		}
	} else {
		for _, m := range matches {
			// The matched FQDN as seen in the zone, the decoded label,
			// and the imitated domain under the zone's own suffix — no
			// TLD is assumed.
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", m.FQDN, m.Unicode, m.Imitated(), diffsText(m))
		}
	}
	fmt.Fprintf(os.Stderr, "scanned %d IDNs, detected %d homograph matches\n", scanned, len(matches))
	return nil
}

func diffsText(m shamfinder.Match) string {
	parts := make([]string, len(m.Diffs))
	for i, d := range m.Diffs {
		parts[i] = d.String()
	}
	return strings.Join(parts, ",")
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	refsPath := fs.String("refs", "", "reference domain list")
	snapPath := fs.String("snapshot", "", "load a compiled snapshot instead of building")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("explain: need one DOMAIN (plus -refs FILE or -snapshot FILE)")
	}
	fw, det, err := loadEngine(*snapPath, *refsPath, *fast, "both", true)
	if err != nil {
		return err
	}
	matches := det.DetectDomain(strings.ToLower(fs.Arg(0)))
	if len(matches) == 0 {
		fmt.Printf("%s: no homograph of any reference domain\n", fs.Arg(0))
		return nil
	}
	for _, m := range matches {
		fmt.Println(fw.Warn(m).Text())
	}
	return nil
}

func cmdRevert(args []string) error {
	fs := flag.NewFlagSet("revert", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "load a compiled snapshot instead of building")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("revert: need one DOMAIN")
	}
	fw, _, err := loadEngine(*snapPath, "", *fast, "both", false)
	if err != nil {
		return err
	}
	name := strings.ToLower(fs.Arg(0))
	uni, err := shamfinder.ToUnicode(name)
	if err != nil {
		return fmt.Errorf("decoding %q: %w", name, err)
	}
	// Revert the registrable label and reattach the (possibly
	// multi-label) public suffix — "www.gооgle.co.uk" reverts through
	// "gооgle", not "www".
	label, tld := shamfinder.Registrable(uni)
	reverted := fw.Revert(label)
	if tld != "" {
		reverted += "." + tld
	}
	fmt.Printf("%s\t%s\t%s\n", name, uni, reverted)
	return nil
}

func cmdGlyphs(args []string) error {
	fs := flag.NewFlagSet("glyphs", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "load a compiled snapshot instead of building")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("glyphs: need one CHAR")
	}
	runes := []rune(fs.Arg(0))
	if len(runes) != 1 {
		return fmt.Errorf("glyphs: %q is not a single character", fs.Arg(0))
	}
	fw, _, err := loadEngine(*snapPath, "", *fast, "both", false)
	if err != nil {
		return err
	}
	r := runes[0]
	glyphs := fw.Homoglyphs(r)
	fmt.Printf("%d homoglyphs of %c (U+%04X):\n", len(glyphs), r, r)
	for _, g := range glyphs {
		ok, src := fw.Confusable(r, g)
		if !ok {
			continue
		}
		fmt.Printf("  %c\tU+%04X\t%s\n", g, g, src)
	}
	return nil
}
