// Command shamfinder is the framework's CLI: detect IDN homographs in
// a domain list, serve detection as a long-running hot-swappable HTTP
// service, explain a single suspicious domain, revert a homograph to
// its plausible original, dump homoglyphs of a character, or compile
// the built databases into a binary snapshot so later runs cold-start
// in milliseconds instead of rebuilding the font + SimChar + UC
// pipeline.
//
// Usage:
//
//	shamfinder compile -o shamfinder.snap [-refs refs.txt] [-db uc|simchar|both]
//	shamfinder serve -snapshot shamfinder.snap [-addr 127.0.0.1:8080] [-watch 2s]
//	shamfinder detect -refs refs.txt [-domains zone.txt] [-db uc|simchar|both] [-workers N] [-json]
//	shamfinder detect -snapshot shamfinder.snap [-domains zone.txt]
//	shamfinder explain -refs refs.txt xn--ggle-55da.com
//	shamfinder revert xn--ggle-55da.com
//	shamfinder glyphs o
//
// refs.txt holds one reference domain per line (Alexa-style "rank,domain"
// CSV also accepted); references index on their registrable label, so
// amazon.co.uk protects "amazon" just as google.com protects "google".
// The domain list is read from -domains or stdin and may span any mix
// of TLDs — .com, .net, co.uk-style multi-label suffixes, ACE/IDN TLDs
// like xn--p1ai — with any label count per name. Detected domains are
// echoed in normalized form (lowercased, root dot dropped): the feeder
// lowercases lines in place and retains nothing per line, which is what
// keeps ingestion allocation-free at zone scale.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/blacklist"
	"repro/internal/dnsclient"
	"repro/internal/reflist"
	"repro/internal/service"
	"repro/internal/triage"
	"repro/internal/webclassify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "compile":
		err = cmdCompile(args)
	case "serve":
		err = cmdServe(args)
	case "detect":
		err = cmdDetect(args)
	case "survey":
		err = cmdSurvey(args)
	case "watch-zone":
		err = cmdWatchZone(args)
	case "explain":
		err = cmdExplain(args)
	case "revert":
		err = cmdRevert(args)
	case "glyphs":
		err = cmdGlyphs(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shamfinder:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  shamfinder compile -o FILE [-refs FILE] [-db uc|simchar|both] [-fastfont]
  shamfinder serve   {-refs FILE | -snapshot FILE} [-addr HOST:PORT] [-watch DUR] [-max-inflight N] [-job-dir DIR]
                     [-survey-ttl DUR] [-survey-keep N] [-survey-stall DUR] [-backend postings|skeleton|both]
                     [-db uc|simchar|both] [-fastfont]
  shamfinder detect  {-refs FILE | -snapshot FILE} [-domains FILE] [-backend postings|skeleton|both]
                     [-db uc|simchar|both] [-fastfont] [-workers N] [-json]
  shamfinder survey  {-matches FILE | {-refs FILE | -snapshot FILE} [-domains FILE]} -resolver HOST:PORT
                     [-dns-transport udp|tcp|dot|doh] [-dns-workers N] [-web-workers N] [-rate QPS] [-retries N]
                     [-stage-timeout DUR] [-dns-timeout DUR] [-backend postings|skeleton|both]
                     [-skip-dns] [-skip-web] [-blacklist NAME=FILE ...] [-parking-ns LIST]
                     [-http-addr HOST:PORT] [-https-addr HOST:PORT] [-o FILE.jsonl] [-resume FILE.jsonl] [-table]
  shamfinder watch-zone -zone FILE -state DIR {-refs FILE | -snapshot FILE} [-deltas FILE] [-interval DUR] [-once]
                     [-resolver HOST:PORT] [-dns-transport udp|tcp|dot|doh] [-addr HOST:PORT] [-throttle LPS] [-checkpoint-every N]
                     [-min-zone-fraction F] [-survey-jobs DIR] [-survey-batch N] [-survey-age DUR]
                     [-survey-stall DUR] [-survey-skip-web] [-db uc|simchar|both] [-fastfont]
  shamfinder watch-zone -status -addr HOST:PORT
  shamfinder explain {-refs FILE | -snapshot FILE} [-fastfont] DOMAIN
  shamfinder revert  [-snapshot FILE] [-fastfont] DOMAIN
  shamfinder glyphs  [-snapshot FILE] [-fastfont] CHAR

domain lists may span any TLD (.com, .net, co.uk, xn--p1ai, ...); full
FQDNs are scanned label-aware and references index on their registrable
label (amazon.co.uk protects "amazon").

-backend selects the detection backend: postings (the per-position
index, pinpoints each substituted character), skeleton (the TR39
whole-label prototype map, catches many-to-one homographs like
rnicrosoft/vvikipedia that no same-length comparison can see — and
therefore scans pure-ASCII names too), or both (the union, each match
tagged with the backend(s) that found it).

serve exposes the hot-swappable engine as an HTTP JSON API (POST
/v1/detect, GET /v1/explain, POST /v1/reload, POST /v1/survey, GET
/healthz, GET /metrics); -watch polls the snapshot file and swaps new
state in with zero downtime. -job-dir makes survey jobs durable: every
job persists a manifest and record log, a killed process resumes its
interrupted jobs byte-identically on restart, and corrupt state is
quarantined, never silently served.

survey runs the measurement pipeline (paper §5–6) over detected
homographs: DNS probing against -resolver, web classification of the
resolvable set, and blacklist coverage, streaming one JSONL record per
domain. -dns-transport selects how probes travel: udp (pooled sockets,
the default), tcp (pipelined keep-alive pool), dot (DNS over TLS) or
doh (DNS over HTTPS/2); every transport produces identical records. Input is either a match file (-matches: one FQDN per line,
optionally TAB-separated reference and source columns) or a domain
list (-domains/stdin) detected on the fly. -resume loads a previous
run's JSONL output and skips already-probed domains; the rewritten
output is byte-identical to an uninterrupted run.

watch-zone polls a zone file and streams each new generation against a
durable seen-set, appending only the added FQDNs to the deltas journal
(detections carry the imitated reference); a SIGKILL at any point
resumes from the checkpoint with no duplicated and no dropped deltas.
-resolver probes additions for NS/A/MX; -addr serves /metrics with the
watcher's health; -once runs a single scan for cron. -survey-jobs
closes the monitoring loop: journal deltas batch into durable survey
jobs (each recording the journal span it covers, so restarts re-submit
nothing) and /metrics carries the continuously merged survey tally.`)
}

func buildConfig(fast bool, db string) (shamfinder.Config, error) {
	cfg := shamfinder.Config{}
	if fast {
		cfg.FontScope = shamfinder.FontFast
	}
	switch strings.ToLower(db) {
	case "", "both":
		cfg.Sources = shamfinder.SourceBoth
	case "uc":
		cfg.Sources = shamfinder.SourceUC
	case "simchar":
		cfg.Sources = shamfinder.SourceSimChar
	default:
		return cfg, fmt.Errorf("unknown -db %q (want uc, simchar or both)", db)
	}
	return cfg, nil
}

func newFramework(fast bool, db string) (*shamfinder.Framework, error) {
	cfg, err := buildConfig(fast, db)
	if err != nil {
		return nil, err
	}
	return shamfinder.New(cfg)
}

// loadEngine resolves the framework and detector from a snapshot file
// (milliseconds) or a fresh build (seconds). With -snapshot, an
// explicit -refs overrides any embedded detector; -db is baked into the
// snapshot at compile time and the flag is ignored.
func loadEngine(snapPath, refsPath string, fast bool, db string, needDetector bool) (*shamfinder.Framework, *shamfinder.Detector, error) {
	if snapPath != "" {
		fw, det, err := shamfinder.LoadSnapshot(snapPath)
		if err != nil {
			return nil, nil, fmt.Errorf("loading snapshot %s: %w", snapPath, err)
		}
		if refsPath != "" {
			refs, err := loadRefs(refsPath)
			if err != nil {
				return nil, nil, fmt.Errorf("loading refs: %w", err)
			}
			det = fw.NewDetector(refs)
		}
		if needDetector && det == nil {
			return nil, nil, fmt.Errorf("snapshot %s embeds no detector; pass -refs or recompile with -refs", snapPath)
		}
		return fw, det, nil
	}
	if needDetector && refsPath == "" {
		return nil, nil, fmt.Errorf("need -refs FILE or -snapshot FILE")
	}
	fw, err := newFramework(fast, db)
	if err != nil {
		return nil, nil, err
	}
	var det *shamfinder.Detector
	if refsPath != "" {
		refs, err := loadRefs(refsPath)
		if err != nil {
			return nil, nil, fmt.Errorf("loading refs: %w", err)
		}
		det = fw.NewDetector(refs)
	}
	return fw, det, nil
}

// loadRefs reads reference labels from a plain list or rank CSV —
// shared with the serving layer's /v1/reload endpoint through
// internal/reflist, so a list hot-loaded over HTTP parses exactly as
// it does here. Each domain contributes its registrable label —
// suffix-aware, so amazon.co.uk indexes "amazon", not "amazon.co" —
// on any TLD.
func loadRefs(path string) ([]string, error) {
	return reflist.Load(path)
}

// cmdCompile builds the databases once and persists the compiled
// artifacts; every later run loads them in milliseconds.
func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	out := fs.String("o", "shamfinder.snap", "output snapshot path")
	refsPath := fs.String("refs", "", "embed a detector for this reference list (optional)")
	db := fs.String("db", "both", "homoglyph database: uc, simchar or both")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	fw, err := newFramework(*fast, *db)
	if err != nil {
		return err
	}
	var det *shamfinder.Detector
	nrefs := 0
	if *refsPath != "" {
		refs, err := loadRefs(*refsPath)
		if err != nil {
			return fmt.Errorf("loading refs: %w", err)
		}
		det = fw.NewDetector(refs)
		nrefs = len(det.References())
	}
	if err := fw.SaveSnapshot(*out, det); err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "compiled %s: %d bytes, %d homoglyph chars, %d references\n",
		*out, st.Size(), fw.DB().Chars().Len(), nrefs)
	return nil
}

// cmdServe runs the long-lived detection service: the hot-swappable
// engine behind the HTTP JSON API, with optional snapshot watching.
// Ctrl-C / SIGTERM drains in-flight requests and exits cleanly.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	snapPath := fs.String("snapshot", "", "cold-start from a compiled snapshot (and the -watch reload source)")
	refsPath := fs.String("refs", "", "reference domain list (overrides the snapshot's embedded detector)")
	watch := fs.Duration("watch", 0, "poll the snapshot file at this interval and hot-swap on change (e.g. 2s); 0 = off")
	db := fs.String("db", "both", "homoglyph database when building fresh: uc, simchar or both")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation when building fresh")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrent detection requests before shedding; 0 = default")
	jobDir := fs.String("job-dir", "", "persist /v1/survey jobs here; interrupted jobs resume byte-identically on restart")
	surveyTTL := fs.Duration("survey-ttl", 0, "evict finished survey jobs this long after they finish; 0 = no TTL")
	surveyKeep := fs.Int("survey-keep", 0, "max retained finished survey jobs; 0 = 32")
	surveyStall := fs.Duration("survey-stall", 0, "fail a survey job whose pipeline freezes this long; 0 = no watchdog")
	backend := fs.String("backend", "", "default detection backend: postings (default), skeleton or both")
	fs.Parse(args)
	if *watch > 0 && *snapPath == "" {
		return fmt.Errorf("serve: -watch needs -snapshot (it polls the snapshot file)")
	}
	be, err := shamfinder.ParseBackend(*backend)
	if err != nil {
		return err
	}
	cfg, err := buildConfig(*fast, *db)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger := log.New(os.Stderr, "shamfinder: ", log.LstdFlags)
	return shamfinder.Serve(ctx, shamfinder.ServeOptions{
		Addr:         *addr,
		SnapshotPath: *snapPath,
		RefsPath:     *refsPath,
		Watch:        *watch,
		Build:        cfg,
		MaxInFlight:  *maxInFlight,
		Backend:      be,
		JobDir:       *jobDir,
		SurveyTTL:    *surveyTTL,
		SurveyKeep:   *surveyKeep,
		SurveyStall:  *surveyStall,
		Logf:         logger.Printf,
	})
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	refsPath := fs.String("refs", "", "reference domain list")
	snapPath := fs.String("snapshot", "", "load a compiled snapshot instead of building")
	domainsPath := fs.String("domains", "", "domain list to scan; empty = stdin")
	db := fs.String("db", "both", "homoglyph database: uc, simchar or both")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	workers := fs.Int("workers", 0, "detection workers; 0 = GOMAXPROCS")
	jsonOut := fs.Bool("json", false, "emit one JSON object per match (the serve API's wire format)")
	backend := fs.String("backend", "", "detection backend: postings (default), skeleton or both")
	fs.Parse(args)
	be, err := shamfinder.ParseBackend(*backend)
	if err != nil {
		return err
	}
	_, det, err := loadEngine(*snapPath, *refsPath, *fast, *db, true)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if *domainsPath != "" {
		f, err := os.Open(*domainsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	matches, scanned, err := streamDetectBackend(det, in, *workers, be)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *jsonOut {
		// One JSON object per match, in the exact wire format the serve
		// API's /v1/detect responds with (service.Match) — downstream
		// tooling parses one shape whether it scraped the CLI or the
		// HTTP endpoint.
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		for _, m := range matches {
			if err := enc.Encode(service.NewMatch(m)); err != nil {
				return err
			}
		}
	} else {
		for _, m := range matches {
			// The matched FQDN as seen in the zone, the decoded label,
			// the imitated domain under the zone's own suffix — no TLD
			// is assumed — the backend that found it, and the diffs.
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", m.FQDN, m.Unicode, m.Imitated(), m.Backend, diffsText(m))
		}
	}
	fmt.Fprintf(os.Stderr, "scanned %d IDNs, detected %d homograph matches\n", scanned, len(matches))
	return nil
}

// streamDetect drives the zone through the parallel engine: a feeder
// goroutine pushes labels while workers detect, so scanning overlaps
// I/O and memory scales with the IDNs (0.67% of a zone), not the zone.
// Labels travel as pooled byte buffers that workers recycle after each
// scan — with the in-place normalization and the engine's lazy string
// materialization, a line that matches nothing allocates nothing.
// Matches are sorted before returning, making the output deterministic
// for any worker count. Shared by detect (which prints them) and
// survey (which pipes them into the triage pipeline).
func streamDetect(det *shamfinder.Detector, in io.Reader, workers int) ([]shamfinder.Match, int, error) {
	return streamDetectBackend(det, in, workers, shamfinder.BackendPostings)
}

// streamDetectBackend is streamDetect with an explicit backend. When
// the backend includes the skeleton index the feeder keeps every
// non-blank line (NormalizeZoneLineAll): pure-ASCII names like
// "rnicrosoft.com" are exactly the class that backend catches, so the
// posting backend's ACE/non-ASCII gate must not drop them.
func streamDetectBackend(det *shamfinder.Detector, in io.Reader, workers int, be shamfinder.Backend) ([]shamfinder.Match, int, error) {
	labels := make(chan *[]byte, 1024)
	pool := &sync.Pool{New: func() any { b := make([]byte, 0, 80); return &b }}
	normalize := shamfinder.NormalizeZoneLine
	if be&shamfinder.BackendSkeleton != 0 {
		normalize = shamfinder.NormalizeZoneLineAll
	}
	scanned := 0
	var scanErr error
	go func() {
		defer close(labels)
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
		for sc.Scan() {
			label, ok := normalize(sc.Bytes())
			if !ok {
				continue
			}
			scanned++
			bp := pool.Get().(*[]byte)
			*bp = append((*bp)[:0], label...)
			labels <- bp
		}
		scanErr = sc.Err()
	}()
	var matches []shamfinder.Match
	for m := range det.DetectStreamBytesBackend(labels, workers, pool, be) {
		matches = append(matches, m)
	}
	// The stream has drained, so the feeder is done: scanErr is safe to
	// read from here on.
	if scanErr != nil {
		return nil, scanned, scanErr
	}
	shamfinder.SortMatches(matches)
	return matches, scanned, nil
}

func diffsText(m shamfinder.Match) string {
	parts := make([]string, len(m.Diffs))
	for i, d := range m.Diffs {
		parts[i] = d.String()
	}
	return strings.Join(parts, ",")
}

// cmdSurvey runs the measurement half of the framework (paper §5–6)
// as one streaming pipeline: detected homographs → DNS probing → web
// classification of the resolvable set → blacklist coverage, one
// JSONL record per domain, flushed as produced so the output doubles
// as a checkpoint.
func cmdSurvey(args []string) error {
	fs := flag.NewFlagSet("survey", flag.ExitOnError)
	refsPath := fs.String("refs", "", "reference domain list (for -domains detection and homograph reversion)")
	snapPath := fs.String("snapshot", "", "load a compiled snapshot instead of building")
	domainsPath := fs.String("domains", "", "domain list to detect then survey; empty = stdin (ignored with -matches)")
	matchesPath := fs.String("matches", "", "pre-detected match file: FQDN per line, optional TAB-separated reference and source columns")
	db := fs.String("db", "both", "homoglyph database: uc, simchar or both")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	workers := fs.Int("workers", 0, "detection workers; 0 = GOMAXPROCS")
	resolver := fs.String("resolver", "", "DNS server HOST:PORT to probe (required unless -skip-dns)")
	dnsTransport := fs.String("dns-transport", "udp", "probing transport: udp, tcp, dot or doh")
	dnsWorkers := fs.Int("dns-workers", 16, "concurrent DNS probes")
	webWorkers := fs.Int("web-workers", 16, "concurrent web fetches")
	rate := fs.Float64("rate", 0, "max DNS probes per second across workers; 0 = unlimited")
	retries := fs.Int("retries", 1, "extra attempts per failed DNS probe; negative = none")
	stageTimeout := fs.Duration("stage-timeout", 15*time.Second, "per-domain ceiling in one pipeline stage")
	dnsTimeout := fs.Duration("dns-timeout", 2*time.Second, "per-attempt DNS query timeout")
	webTimeout := fs.Duration("web-timeout", 3*time.Second, "per-fetch HTTP timeout")
	skipDNS := fs.Bool("skip-dns", false, "skip the DNS stage (web-classify everything)")
	skipWeb := fs.Bool("skip-web", false, "skip the web classification stage")
	var blacklistSpecs []string
	fs.Func("blacklist", "NAME=FILE hosts-format feed (hphosts, gsb or symantec; repeatable); none = skip the blacklist stage",
		func(v string) error { blacklistSpecs = append(blacklistSpecs, v); return nil })
	parkingNS := fs.String("parking-ns", "", "comma-separated parking-provider NS suffixes (parked-by-delegation first pass)")
	httpAddr := fs.String("http-addr", "", "dial every port-80 fetch here (simulated/shared web infrastructure); empty = dial the domain")
	httpsAddr := fs.String("https-addr", "", "dial every port-443 fetch here; empty = dial the domain")
	userAgent := fs.String("user-agent", "Mozilla/5.0 (X11; Linux x86_64) ShamFinder/1.0", "User-Agent for web fetches")
	outPath := fs.String("o", "", "write JSONL records here (the checkpoint file); empty = stdout")
	resumePath := fs.String("resume", "", "previous JSONL output: domains already recorded there are not re-probed")
	table := fs.Bool("table", false, "print Tables 12–14-shaped summaries after the run")
	backend := fs.String("backend", "", "detection backend for -domains input: postings (default), skeleton or both")
	fs.Parse(args)

	if !*skipDNS && *resolver == "" {
		return fmt.Errorf("survey: need -resolver HOST:PORT (or -skip-dns)")
	}
	be, err := shamfinder.ParseBackend(*backend)
	if err != nil {
		return err
	}

	// Resolve the input set: a pre-detected match file, or run
	// detection over -domains/stdin with the loaded engine.
	var inputs []triage.Input
	var fw *shamfinder.Framework
	if *matchesPath != "" {
		var err error
		if inputs, err = loadMatchFile(*matchesPath); err != nil {
			return err
		}
		// A snapshot or refs file is optional here; when given it still
		// supplies the homoglyph DB for brand-redirect reversion.
		if *snapPath != "" || *refsPath != "" {
			if fw, _, err = loadEngine(*snapPath, *refsPath, *fast, *db, false); err != nil {
				return err
			}
		}
	} else {
		var det *shamfinder.Detector
		var err error
		if fw, det, err = loadEngine(*snapPath, *refsPath, *fast, *db, true); err != nil {
			return err
		}
		var in io.Reader = os.Stdin
		if *domainsPath != "" {
			f, err := os.Open(*domainsPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		matches, scanned, err := streamDetectBackend(det, in, *workers, be)
		if err != nil {
			return err
		}
		inputs = triage.InputsFromMatches(matches)
		fmt.Fprintf(os.Stderr, "scanned %d IDNs, detected %d homograph domains\n", scanned, len(inputs))
	}

	feeds, err := parseBlacklistFlags(blacklistSpecs)
	if err != nil {
		return err
	}

	// Resume BEFORE the output file is truncated: -resume and -o may
	// (and normally do) name the same file.
	resume := map[string]triage.Record{}
	if *resumePath != "" {
		if resume, err = triage.LoadCheckpoint(*resumePath); err != nil {
			return err
		}
	}

	cfg := triage.Config{
		Blacklists:    feeds,
		DNSWorkers:    *dnsWorkers,
		WebWorkers:    *webWorkers,
		RateLimit:     *rate,
		Retries:       *retries,
		StageTimeout:  *stageTimeout,
		Resume:        resume,
		SkipDNS:       *skipDNS,
		SkipWeb:       *skipWeb,
		SkipBlacklist: feeds == nil,
	}
	if *parkingNS != "" {
		for _, p := range strings.Split(*parkingNS, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.ParkingNS = append(cfg.ParkingNS, p)
			}
		}
	}
	if !*skipDNS {
		transport, err := dnsclient.ParseTransport(*dnsTransport)
		if err != nil {
			return fmt.Errorf("survey: %w", err)
		}
		client := dnsclient.New(*resolver)
		client.Transport = transport
		client.Timeout = *dnsTimeout
		// -retries is the one retry knob: the pipeline owns the policy,
		// so the client's own UDP retransmits are disabled rather than
		// silently multiplying it.
		client.Retries = 0
		defer client.Close()
		cfg.DNS = client
	}
	if !*skipWeb {
		classifier := &webclassify.Classifier{
			Resolve: func(domain string, port int) string {
				if port == 443 && *httpsAddr != "" {
					return *httpsAddr
				}
				if port != 443 && *httpAddr != "" {
					return *httpAddr
				}
				return net.JoinHostPort(domain, strconv.Itoa(port))
			},
			Timeout:   *webTimeout,
			UserAgent: *userAgent,
		}
		if fw != nil {
			classifier.Reverter = fw.RevertDomain
		}
		if feeds != nil {
			classifier.IsMalicious = feeds.AnyContains
		}
		cfg.Classifier = classifier
	}
	p, err := triage.New(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	rw := triage.NewRecordWriter(w)
	tally := triage.NewTally()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	in := make(chan triage.Input)
	go func() {
		defer close(in)
		for _, input := range inputs {
			select {
			case in <- input:
			case <-ctx.Done():
				return
			}
		}
	}()
	start := time.Now()
	for rec := range p.Stream(ctx, in) {
		if err := rw.Write(rec); err != nil {
			return err
		}
		tally.Add(rec)
	}
	if err := ctx.Err(); err != nil {
		where := *outPath
		if where == "" {
			where = "the saved output"
		}
		return fmt.Errorf("survey interrupted after %d of %d domains; rerun with -resume %s to continue", tally.Total, len(inputs), where)
	}
	fmt.Fprintf(os.Stderr, "surveyed %d domains in %v: %d with NS, %d with A, %d DNS errors, %d blacklisted (%d resumed)\n",
		tally.Total, time.Since(start).Round(time.Millisecond),
		tally.WithNS, tally.WithA, tally.DNSErrors, tally.Blacklisted, tally.Resumed)
	if *table {
		out := bufio.NewWriter(os.Stdout)
		defer out.Flush()
		for _, tbl := range tally.Tables() {
			tbl.Write(out)
			fmt.Fprintln(out)
		}
		if len(tally.ByFeedSource) > 0 {
			tally.TableFourteen().Write(out)
		}
	}
	return nil
}

// loadMatchFile reads a pre-detected match list: one FQDN per line,
// optionally followed by TAB-separated reference and source columns
// (extra columns ignored, # comments skipped). Duplicate FQDNs keep
// their first line.
func loadMatchFile(path string) ([]triage.Input, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var inputs []triage.Input
	seen := make(map[string]bool)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		// ACE-aware normalization: a Unicode-form line probes as its
		// xn-- form, same as the detection path would emit it.
		fqdn := triage.NormalizeFQDN(fields[0])
		if fqdn == "" || seen[fqdn] {
			continue
		}
		seen[fqdn] = true
		input := triage.Input{FQDN: fqdn}
		if len(fields) > 1 {
			input.Reference = fields[1]
		}
		if len(fields) > 2 {
			input.Source = fields[2]
		}
		inputs = append(inputs, input)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return inputs, nil
}

// parseBlacklistFlags assembles the Table 14 feed set from repeated
// NAME=FILE flags. No flags means no blacklist stage; named feeds are
// loaded from hosts-format files and the unnamed ones stay empty.
func parseBlacklistFlags(specs []string) (*blacklist.Set, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	set := &blacklist.Set{
		HpHosts:  blacklist.NewFeed("hpHosts"),
		GSB:      blacklist.NewFeed("GSB"),
		Symantec: blacklist.NewFeed("Symantec"),
	}
	for _, spec := range specs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("survey: -blacklist %q: want NAME=FILE", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		var canonical string
		switch strings.ToLower(name) {
		case "hphosts":
			canonical = "hpHosts"
		case "gsb":
			canonical = "GSB"
		case "symantec":
			canonical = "Symantec"
		default:
			f.Close()
			return nil, fmt.Errorf("survey: unknown blacklist %q (want hphosts, gsb or symantec)", name)
		}
		feed, err := blacklist.Parse(canonical, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		switch canonical {
		case "hpHosts":
			set.HpHosts = feed
		case "GSB":
			set.GSB = feed
		case "Symantec":
			set.Symantec = feed
		}
	}
	return set, nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	refsPath := fs.String("refs", "", "reference domain list")
	snapPath := fs.String("snapshot", "", "load a compiled snapshot instead of building")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("explain: need one DOMAIN (plus -refs FILE or -snapshot FILE)")
	}
	fw, det, err := loadEngine(*snapPath, *refsPath, *fast, "both", true)
	if err != nil {
		return err
	}
	matches := det.DetectDomain(strings.ToLower(fs.Arg(0)))
	if len(matches) == 0 {
		fmt.Printf("%s: no homograph of any reference domain\n", fs.Arg(0))
		return nil
	}
	for _, m := range matches {
		fmt.Println(fw.Warn(m).Text())
	}
	return nil
}

func cmdRevert(args []string) error {
	fs := flag.NewFlagSet("revert", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "load a compiled snapshot instead of building")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("revert: need one DOMAIN")
	}
	fw, _, err := loadEngine(*snapPath, "", *fast, "both", false)
	if err != nil {
		return err
	}
	name := strings.ToLower(fs.Arg(0))
	uni, err := shamfinder.ToUnicode(name)
	if err != nil {
		return fmt.Errorf("decoding %q: %w", name, err)
	}
	// Revert the registrable label and reattach the (possibly
	// multi-label) public suffix — "www.gооgle.co.uk" reverts through
	// "gооgle", not "www".
	reverted, ok := fw.RevertDomain(name)
	if !ok {
		return fmt.Errorf("decoding %q: registrable label does not decode", name)
	}
	fmt.Printf("%s\t%s\t%s\n", name, uni, reverted)
	return nil
}

func cmdGlyphs(args []string) error {
	fs := flag.NewFlagSet("glyphs", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "load a compiled snapshot instead of building")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("glyphs: need one CHAR")
	}
	runes := []rune(fs.Arg(0))
	if len(runes) != 1 {
		return fmt.Errorf("glyphs: %q is not a single character", fs.Arg(0))
	}
	fw, _, err := loadEngine(*snapPath, "", *fast, "both", false)
	if err != nil {
		return err
	}
	r := runes[0]
	glyphs := fw.Homoglyphs(r)
	fmt.Printf("%d homoglyphs of %c (U+%04X):\n", len(glyphs), r, r)
	for _, g := range glyphs {
		ok, src := fw.Confusable(r, g)
		if !ok {
			continue
		}
		fmt.Printf("  %c\tU+%04X\t%s\n", g, g, src)
	}
	return nil
}
