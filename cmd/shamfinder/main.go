// Command shamfinder is the framework's CLI: detect IDN homographs in
// a domain list, explain a single suspicious domain, revert a
// homograph to its plausible original, or dump homoglyphs of a
// character.
//
// Usage:
//
//	shamfinder detect -refs refs.txt [-domains zone.txt] [-db uc|simchar|both] [-workers N]
//	shamfinder explain -refs refs.txt xn--ggle-55da.com
//	shamfinder revert xn--ggle-55da.com
//	shamfinder glyphs o
//
// refs.txt holds one reference domain per line (Alexa-style "rank,domain"
// CSV also accepted); the domain list is read from -domains or stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/ranking"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "detect":
		err = cmdDetect(args)
	case "explain":
		err = cmdExplain(args)
	case "revert":
		err = cmdRevert(args)
	case "glyphs":
		err = cmdGlyphs(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shamfinder:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  shamfinder detect  -refs FILE [-domains FILE] [-db uc|simchar|both] [-fastfont] [-workers N]
  shamfinder explain -refs FILE [-fastfont] DOMAIN
  shamfinder revert  [-fastfont] DOMAIN
  shamfinder glyphs  [-fastfont] CHAR`)
}

func newFramework(fast bool, db string) (*shamfinder.Framework, error) {
	cfg := shamfinder.Config{}
	if fast {
		cfg.FontScope = shamfinder.FontFast
	}
	switch strings.ToLower(db) {
	case "", "both":
		cfg.Sources = shamfinder.SourceBoth
	case "uc":
		cfg.Sources = shamfinder.SourceUC
	case "simchar":
		cfg.Sources = shamfinder.SourceSimChar
	default:
		return nil, fmt.Errorf("unknown -db %q (want uc, simchar or both)", db)
	}
	return shamfinder.New(cfg)
}

// loadRefs reads reference labels from a plain list or rank CSV,
// stripping ".com" TLDs.
func loadRefs(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, 512)
	n, _ := f.Read(head)
	f.Seek(0, io.SeekStart)
	if strings.Contains(string(head[:n]), ",") {
		list, err := ranking.ParseCSV(f)
		if err != nil {
			return nil, err
		}
		return list.SLDs(list.Len()), nil
	}
	var refs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		d := strings.TrimSpace(sc.Text())
		if d == "" || strings.HasPrefix(d, "#") {
			continue
		}
		refs = append(refs, strings.TrimSuffix(strings.ToLower(d), ".com"))
	}
	return refs, sc.Err()
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	refsPath := fs.String("refs", "", "reference domain list (required)")
	domainsPath := fs.String("domains", "", "domain list to scan; empty = stdin")
	db := fs.String("db", "both", "homoglyph database: uc, simchar or both")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	workers := fs.Int("workers", 0, "detection workers; 0 = GOMAXPROCS")
	fs.Parse(args)
	if *refsPath == "" {
		return fmt.Errorf("detect: -refs is required")
	}
	refs, err := loadRefs(*refsPath)
	if err != nil {
		return fmt.Errorf("loading refs: %w", err)
	}
	var in io.Reader = os.Stdin
	if *domainsPath != "" {
		f, err := os.Open(*domainsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	fw, err := newFramework(*fast, *db)
	if err != nil {
		return err
	}
	det := fw.NewDetector(refs)

	// Stream the zone through the parallel engine: a feeder goroutine
	// pushes labels while workers detect, so scanning overlaps I/O and
	// memory scales with the IDNs (0.67% of a zone), not the zone. The
	// feeder also remembers each label's original spelling so output
	// echoes the domain exactly as scanned; matches are sorted before
	// printing, making the output deterministic for any worker count.
	labels := make(chan string, 1024)
	origin := make(map[string]string)
	scanned := 0
	var scanErr error
	go func() {
		defer close(labels)
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
		for sc.Scan() {
			domain := strings.TrimSpace(sc.Text())
			if domain == "" || !shamfinder.IsIDN(domain) {
				continue
			}
			scanned++
			label := strings.TrimSuffix(strings.ToLower(domain), ".com")
			if _, ok := origin[label]; !ok {
				origin[label] = domain
			}
			labels <- label
		}
		scanErr = sc.Err()
	}()

	var matches []shamfinder.Match
	for m := range det.DetectStream(labels, *workers) {
		matches = append(matches, m)
	}
	// The stream has drained, so the feeder is done: origin and scanErr
	// are safe to read from here on.
	if scanErr != nil {
		return scanErr
	}
	shamfinder.SortMatches(matches)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, m := range matches {
		domain, ok := origin[m.IDN]
		if !ok {
			domain = m.IDN
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", domain, m.Unicode, m.Reference+".com", diffsText(m))
	}
	fmt.Fprintf(os.Stderr, "scanned %d IDNs, detected %d homograph matches\n", scanned, len(matches))
	return nil
}

func diffsText(m shamfinder.Match) string {
	parts := make([]string, len(m.Diffs))
	for i, d := range m.Diffs {
		parts[i] = d.String()
	}
	return strings.Join(parts, ",")
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	refsPath := fs.String("refs", "", "reference domain list (required)")
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	if *refsPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("explain: need -refs FILE and one DOMAIN")
	}
	refs, err := loadRefs(*refsPath)
	if err != nil {
		return err
	}
	fw, err := newFramework(*fast, "both")
	if err != nil {
		return err
	}
	det := fw.NewDetector(refs)
	label := strings.TrimSuffix(strings.ToLower(fs.Arg(0)), ".com")
	matches := det.DetectLabel(label)
	if len(matches) == 0 {
		fmt.Printf("%s: no homograph of any reference domain\n", fs.Arg(0))
		return nil
	}
	for _, m := range matches {
		fmt.Println(fw.Warn(m).Text())
	}
	return nil
}

func cmdRevert(args []string) error {
	fs := flag.NewFlagSet("revert", flag.ExitOnError)
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("revert: need one DOMAIN")
	}
	fw, err := newFramework(*fast, "both")
	if err != nil {
		return err
	}
	domain := strings.ToLower(fs.Arg(0))
	uni, err := shamfinder.ToUnicode(domain)
	if err != nil {
		return fmt.Errorf("decoding %q: %w", domain, err)
	}
	label, tld, _ := strings.Cut(uni, ".")
	reverted := fw.Revert(label)
	if tld != "" {
		reverted += "." + tld
	}
	fmt.Printf("%s\t%s\t%s\n", domain, uni, reverted)
	return nil
}

func cmdGlyphs(args []string) error {
	fs := flag.NewFlagSet("glyphs", flag.ExitOnError)
	fast := fs.Bool("fastfont", false, "skip CJK/Hangul font generation")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("glyphs: need one CHAR")
	}
	runes := []rune(fs.Arg(0))
	if len(runes) != 1 {
		return fmt.Errorf("glyphs: %q is not a single character", fs.Arg(0))
	}
	fw, err := newFramework(*fast, "both")
	if err != nil {
		return err
	}
	r := runes[0]
	glyphs := fw.Homoglyphs(r)
	fmt.Printf("%d homoglyphs of %c (U+%04X):\n", len(glyphs), r, r)
	for _, g := range glyphs {
		ok, src := fw.Confusable(r, g)
		if !ok {
			continue
		}
		fmt.Printf("  %c\tU+%04X\t%s\n", g, g, src)
	}
	return nil
}
