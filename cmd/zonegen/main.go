// Command zonegen generates the synthetic .com registry and writes its
// artifacts: the RFC 1035 zone file (the Verisign stand-in), the flat
// domain list (the domainlists.io stand-in), the Alexa-style reference
// CSV, and the three blacklist feeds.
//
// Usage:
//
//	zonegen [-seed 7] [-scale 0.002] [-refs 10000] [-fastfont] -dir out/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/blacklist"
	"repro/internal/ranking"
	"repro/internal/registry"
)

func main() {
	var (
		seed  = flag.Uint64("seed", 7, "deterministic seed")
		scale = flag.Float64("scale", 0.002, "benign-corpus scale (paper = 1.0)")
		refsN = flag.Int("refs", 10000, "reference list size")
		fast  = flag.Bool("fastfont", false, "skip CJK/Hangul font generation")
		dir   = flag.String("dir", "", "output directory (required)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "zonegen: -dir is required")
		os.Exit(2)
	}
	if err := run(*seed, *scale, *refsN, *fast, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "zonegen:", err)
		os.Exit(1)
	}
}

func run(seed uint64, scale float64, refsN int, fast bool, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := shamfinder.Config{}
	if fast {
		cfg.FontScope = shamfinder.FontFast
	}
	fmt.Fprintln(os.Stderr, "building homoglyph database...")
	fw, err := shamfinder.New(cfg)
	if err != nil {
		return err
	}
	refs := ranking.Generate(refsN, seed, ranking.PaperAnchors())
	fmt.Fprintln(os.Stderr, "generating registry...")
	reg, err := registry.Generate(registry.Options{
		Seed: seed, Scale: scale, Refs: refs, DB: fw.DB(),
	})
	if err != nil {
		return err
	}

	write := func(name string, fn func(w io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
		return nil
	}
	if err := write("com.zone", reg.WriteZoneFile); err != nil {
		return err
	}
	if err := write("domainlist.txt", reg.WriteDomainList); err != nil {
		return err
	}
	if err := write("alexa.csv", refs.WriteCSV); err != nil {
		return err
	}
	feeds := blacklist.FromRegistry(reg, blacklist.DefaultFiller(), seed)
	for _, feed := range feeds.Feeds() {
		feed := feed
		if err := write(feed.Name+".hosts", feed.Write); err != nil {
			return err
		}
	}
	rows := reg.TableSix()
	fmt.Fprintf(os.Stderr, "registry: %d domains (%d IDNs, %d homographs)\n",
		rows[2].Domains, rows[2].IDNs, len(reg.Homographs))
	return nil
}
