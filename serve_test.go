package shamfinder

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEngineFacadeSwapAndRebuild(t *testing.T) {
	fw := framework(t)
	e := fw.NewEngine([]string{"google"})
	if e.Epoch() != 1 {
		t.Fatalf("epoch = %d", e.Epoch())
	}
	probe := "xn--ggle-55da.com" // gооgle
	if ms, ep := e.DetectDomain(probe); len(ms) != 1 || ep != 1 {
		t.Fatalf("epoch-1 probe: %d matches at %d", len(ms), ep)
	}
	if ep := e.Rebuild([]string{"paypal"}); ep != 2 {
		t.Fatalf("Rebuild = %d", ep)
	}
	if ms, ep := e.DetectDomainBytes([]byte(probe)); len(ms) != 0 || ep != 2 {
		t.Fatalf("epoch-2 probe: %d matches at %d", len(ms), ep)
	}
	if ep := e.Swap(fw.NewDetector([]string{"google"})); ep != 3 {
		t.Fatalf("Swap = %d", ep)
	}
	if got := e.Detector().References(); !reflect.DeepEqual(got, []string{"google"}) {
		t.Fatalf("References = %v", got)
	}
}

// TestEngineHotReloadUnderLoad is the facade-level leg of the
// concurrent hot-reload proof (the engine-internal hammer lives in
// internal/core): readers stream DetectDomain while Rebuild loops,
// and every answer must agree with the epoch it reports. Runs in the
// race-enabled tier-1 suite; raceEnabled only scales the iteration
// count down so the instrumented run stays fast.
func TestEngineHotReloadUnderLoad(t *testing.T) {
	fw := framework(t)
	e := fw.NewEngine([]string{"google"})
	swaps := 150
	if raceEnabled {
		swaps = 60
	}
	probe := "xn--ggle-55da.com"
	var stop atomic.Bool
	var bad atomic.Uint64
	var queries atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ms, ep := e.DetectDomain(probe)
				// Odd epochs index "google", even ones "paypal".
				if (ep%2 == 1) != (len(ms) == 1) {
					bad.Add(1)
					return
				}
				queries.Add(1)
			}
		}()
	}
	for queries.Load() < 4 {
		runtime.Gosched()
	}
	for i := 0; i < swaps; i++ {
		if e.Epoch()%2 == 1 {
			e.Rebuild([]string{"paypal"})
		} else {
			e.Rebuild([]string{"google"})
		}
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d answers disagreed with their epoch", n)
	}
	if got := e.Epoch(); got != uint64(swaps)+1 {
		t.Fatalf("epoch = %d after %d rebuilds", got, swaps)
	}
}

// TestServeEndToEnd drives the whole facade wiring: engine from a
// snapshot file, HTTP listener, one detect round-trip under the CLI's
// normalization rules, a live reload, and graceful shutdown.
func TestServeEndToEnd(t *testing.T) {
	fw := framework(t)
	snapPath := t.TempDir() + "/serve.snap"
	if err := fw.SaveSnapshot(snapPath, fw.NewDetector([]string{"google"})); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ServeOptions{
			Addr:         "127.0.0.1:0",
			SnapshotPath: snapPath,
			OnListen:     func(addr net.Addr) { ready <- "http://" + addr.String() },
		})
	}()
	var base string
	select {
	case base = <-ready:
	case err := <-done:
		t.Fatalf("Serve exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never listened")
	}

	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("unmarshal %q: %v", data, err)
		}
		return resp.StatusCode, v
	}

	// Mixed-case + root dot: the server must answer exactly like the
	// CLI feeder normalizes.
	code, v := post("/v1/detect", `{"fqdn":"XN--GGLE-55DA.COM."}`)
	if code != http.StatusOK || v["epoch"].(float64) != 1 {
		t.Fatalf("detect: %d %v", code, v)
	}
	if n := len(v["matches"].([]any)); n != 1 {
		t.Fatalf("matches = %d", n)
	}
	if code, v = post("/v1/reload", `{"references":["paypal"]}`); code != http.StatusOK || v["epoch"].(float64) != 2 {
		t.Fatalf("reload: %d %v", code, v)
	}
	if _, v = post("/v1/detect", `{"fqdn":"xn--ggle-55da.com"}`); len(v["matches"].([]any)) != 0 {
		t.Fatalf("post-reload detect still matches: %v", v)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not drain")
	}
}

func TestServeNeedsReferences(t *testing.T) {
	err := Serve(context.Background(), ServeOptions{Addr: "127.0.0.1:0"})
	if err == nil {
		t.Fatal("Serve with no refs and no snapshot should fail fast")
	}
}

func TestExtractIDNsPreallocParity(t *testing.T) {
	domains := []string{"plain.com", "xn--bcher-kva.com", "sub.xn--p1ai", "a.b.c", "xn--ggle-55da.net"}
	got := ExtractIDNs(domains)
	want := []string{"xn--bcher-kva.com", "sub.xn--p1ai", "xn--ggle-55da.net"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractIDNs = %v, want %v", got, want)
	}
	if cap(got) != len(want) {
		t.Errorf("cap = %d, want exact-size %d", cap(got), len(want))
	}
	if ExtractIDNs([]string{"plain.com"}) != nil {
		t.Error("no-hit input should return nil, not an empty allocation")
	}
}

func TestExtractIDNsBytesAliasesInput(t *testing.T) {
	domains := [][]byte{
		[]byte("plain.com"),
		[]byte("xn--bcher-kva.com"),
		[]byte("sub.xn--p1ai"),
	}
	got := ExtractIDNsBytes(domains)
	if len(got) != 2 || cap(got) != 2 {
		t.Fatalf("got %d hits, cap %d", len(got), cap(got))
	}
	// The hits alias the input backing arrays — no copying.
	if &got[0][0] != &domains[1][0] || &got[1][0] != &domains[2][0] {
		t.Error("output does not alias input storage")
	}
	if ExtractIDNsBytes([][]byte{[]byte("plain.com")}) != nil {
		t.Error("no-hit input should return nil")
	}
}
