// Root benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation (see DESIGN.md §3 for the index), plus
// ablation benches for the design choices the implementation makes.
//
// Run everything once (regenerating each artifact a single time):
//
//	go test -bench=. -benchtime=1x -benchmem .
//
// The benches share one experiment environment (synthetic fast font,
// small benign scale) built lazily on first use; per-iteration work is
// the real pipeline stage, not a cached lookup.
package shamfinder

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dnsclient"
	"repro/internal/dnsserver"
	"repro/internal/experiments"
	"repro/internal/homoglyph"
	"repro/internal/hostsim"
	"repro/internal/punycode"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/simchar"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/triage"
	"repro/internal/ucd"
	"repro/internal/webclassify"
	"repro/internal/websim"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func benchSetup(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.Options{
			Seed: 7, Scale: 0.0001, FastFont: true,
		})
	})
	return benchEnv
}

// runExperiment executes one experiment builder b.N times.
func runExperiment(b *testing.B, f func(e *experiments.Env) error) {
	e := benchSetup(b)
	// Warm the shared fixtures outside the timed region.
	e.DB()
	if _, err := e.Registry(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable01_CharacterSets(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		exp := experiments.Table1(e)
		if len(exp.Comparisons) == 0 {
			b.Fatal("no comparisons")
		}
		return nil
	})
}

func BenchmarkTable02_FontCoverage(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		experiments.Table2(e)
		return nil
	})
}

func BenchmarkTable03_LatinHomoglyphs(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		experiments.Table3(e)
		return nil
	})
}

func BenchmarkTable04_UnicodeBlocks(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		experiments.Table4(e)
		return nil
	})
}

// BenchmarkTable05_BuildTime is the SimChar construction itself — the
// paper's 10.9-hour pipeline stage.
func BenchmarkTable05_BuildTime(b *testing.B) {
	e := benchSetup(b)
	font := e.Font()
	idna := ucd.IDNASet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, tim := simchar.Build(font, idna, simchar.Options{})
		if db.NumPairs() == 0 {
			b.Fatal("empty SimChar")
		}
		b.ReportMetric(float64(tim.CandidatePairs), "candidate-pairs")
	}
}

func BenchmarkTable06_DomainLists(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		_, err := experiments.Table6(e)
		return err
	})
}

func BenchmarkTable07_Languages(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		_, err := experiments.Table7(e)
		return err
	})
}

// benchDetector builds the detection inputs once.
func benchDetector(b *testing.B, src homoglyph.Source) (*core.Detector, []string) {
	e := benchSetup(b)
	reg, err := e.Registry()
	if err != nil {
		b.Fatal(err)
	}
	det := core.NewDetector(e.DB().WithSources(src), e.Refs().SLDs(10000))
	idns := reg.IDNs()
	labels := make([]string, len(idns))
	for i, d := range idns {
		labels[i] = strings.TrimSuffix(d, ".com")
	}
	return det, labels
}

// BenchmarkTable08_Detection measures the union-database Algorithm 1
// sweep that produces Table 8's 3,280 detections.
func BenchmarkTable08_Detection(b *testing.B) {
	det, labels := benchDetector(b, homoglyph.SourceUC|homoglyph.SourceSimChar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matches := det.Detect(labels)
		if len(matches) == 0 {
			b.Fatal("no detections")
		}
	}
}

func BenchmarkTable09_TopTargets(b *testing.B) {
	det, labels := benchDetector(b, homoglyph.SourceUC|homoglyph.SourceSimChar)
	matches := det.Detect(labels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist := core.TargetHistogram(matches)
		if len(hist) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

func BenchmarkTable10_PortScan(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		_, err := experiments.Table10(e)
		return err
	})
}

func BenchmarkTable11_PassiveDNS(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		_, err := experiments.Table11(e)
		return err
	})
}

func BenchmarkTable12_WebClasses(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		_, err := experiments.Table12(e)
		return err
	})
}

func BenchmarkTable13_Redirects(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		_, err := experiments.Table13(e)
		return err
	})
}

func BenchmarkTable14_Blacklists(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		_, err := experiments.Table14(e)
		return err
	})
}

func BenchmarkFigure06_DeltaLadder(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		experiments.Figure6(e)
		return nil
	})
}

func BenchmarkFigure09_ThresholdStudy(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		experiments.Figure9(e)
		return nil
	})
}

func BenchmarkFigure10_Confusability(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		experiments.Figure10(e)
		return nil
	})
}

// BenchmarkDetectionThroughput measures Section 4.2's per-reference
// scan rate (paper: 0.07 s/reference over 955k IDNs) on the indexed,
// parallel engine.
func BenchmarkDetectionThroughput(b *testing.B) {
	det, labels := benchDetector(b, homoglyph.SourceUC|homoglyph.SourceSimChar)
	refs := len(det.References())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(labels)
	}
	b.StopTimer()
	perRef := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(refs)
	b.ReportMetric(perRef, "ns/reference")
	b.ReportMetric(float64(len(labels))*float64(b.N)/b.Elapsed().Seconds(), "labels/s")
}

// BenchmarkDetectionThroughputLinear is the same sweep on the seed
// linear-scan engine — the "before" side of the tentpole ablation.
func BenchmarkDetectionThroughputLinear(b *testing.B) {
	det, labels := benchDetector(b, homoglyph.SourceUC|homoglyph.SourceSimChar)
	refs := len(det.References())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range labels {
			det.DetectLabelLinear(l)
		}
	}
	b.StopTimer()
	perRef := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(refs)
	b.ReportMetric(perRef, "ns/reference")
	b.ReportMetric(float64(len(labels))*float64(b.N)/b.Elapsed().Seconds(), "labels/s")
}

// BenchmarkDetection1kRefs pits the indexed engine against the seed
// linear scan on a 1,000-reference list — the acceptance workload for
// the candidate-index refactor.
func BenchmarkDetection1kRefs(b *testing.B) {
	e := benchSetup(b)
	reg, err := e.Registry()
	if err != nil {
		b.Fatal(err)
	}
	det := core.NewDetector(e.DB(), e.Refs().SLDs(1000))
	idns := reg.IDNs()
	labels := make([]string, len(idns))
	for i, d := range idns {
		labels[i] = strings.TrimSuffix(d, ".com")
	}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.Detect(labels)
		}
		b.ReportMetric(float64(len(labels))*float64(b.N)/b.Elapsed().Seconds(), "labels/s")
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, l := range labels {
				det.DetectLabelLinear(l)
			}
		}
		b.ReportMetric(float64(len(labels))*float64(b.N)/b.Elapsed().Seconds(), "labels/s")
	})
}

// BenchmarkDetectionStream pushes the IDN corpus through the streaming
// API — the zone-file entry point with reusable per-worker buffers.
func BenchmarkDetectionStream(b *testing.B) {
	det, labels := benchDetector(b, homoglyph.SourceUC|homoglyph.SourceSimChar)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := make(chan string, 256)
		go func() {
			for _, l := range labels {
				in <- l
			}
			close(in)
		}()
		n := 0
		for range det.DetectStream(in, 0) {
			n++
		}
		if n == 0 {
			b.Fatal("stream found no matches")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(labels))*float64(b.N)/b.Elapsed().Seconds(), "labels/s")
}

// BenchmarkDetectLabelMiss measures the steady-state per-label cost of
// a label that matches nothing — the common case in a zone sweep. The
// indexed engine rejects in O(label) with O(1) allocations; the seed
// engine walked (and re-converted) every same-length reference.
func BenchmarkDetectLabelMiss(b *testing.B) {
	det, _ := benchDetector(b, homoglyph.SourceUC|homoglyph.SourceSimChar)
	const miss = "zzqjvkwx" // ASCII, same length as many refs, no homoglyph path
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m := det.DetectLabel(miss); len(m) != 0 {
				b.Fatal("unexpected match")
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m := det.DetectLabelLinear(miss); len(m) != 0 {
				b.Fatal("unexpected match")
			}
		}
	})
}

// BenchmarkRevert measures Section 6.4's homograph-to-original
// reversion.
func BenchmarkRevert(b *testing.B) {
	e := benchSetup(b)
	reg, err := e.Registry()
	if err != nil {
		b.Fatal(err)
	}
	db := e.DB()
	labels := make([]string, 0, len(reg.Homographs))
	for i := range reg.Homographs {
		labels = append(labels, reg.Homographs[i].Label)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range labels {
			if db.Revert(l) == "" {
				b.Fatal("empty reversion")
			}
		}
	}
}

// --- Ablation benches: the design choices DESIGN.md §3 calls out. ---

// BenchmarkAblationNaiveVsBanded compares the paper's naive O(n²)
// pairwise Δ scan against this implementation's banded pigeonhole
// index, on the same font.
func BenchmarkAblationNaiveVsBanded(b *testing.B) {
	e := benchSetup(b)
	font := e.Font()
	idna := ucd.IDNASet()
	b.Run("banded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simchar.Build(font, idna, simchar.Options{})
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simchar.Build(font, idna, simchar.Options{Naive: true})
		}
	})
}

// BenchmarkAblationLengthBuckets compares Algorithm 1's same-length
// restriction against matching every IDN to every reference.
func BenchmarkAblationLengthBuckets(b *testing.B) {
	det, labels := benchDetector(b, homoglyph.SourceUC|homoglyph.SourceSimChar)
	b.Run("bucketed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			det.Detect(labels)
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		refs := det.References()
		db := det.DB()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, label := range labels {
				for _, ref := range refs {
					if confusableLabels(db, ref, label) {
						n++
					}
				}
			}
		}
	})
}

// confusableLabels is the unbucketed per-pair check used by the
// exhaustive ablation (it still early-exits on length, as any correct
// implementation must, but pays the full pairing loop).
func confusableLabels(db *homoglyph.DB, ref, idn string) bool {
	r := []rune(ref)
	x := []rune(idn)
	if len(r) != len(x) {
		return false
	}
	for i := range r {
		if r[i] == x[i] {
			continue
		}
		if ok, _ := db.Confusable(r[i], x[i]); !ok {
			return false
		}
	}
	return true
}

// BenchmarkAblationThreshold sweeps the SimChar Δ cutoff, showing how
// pair count (and build time) grows with θ.
func BenchmarkAblationThreshold(b *testing.B) {
	e := benchSetup(b)
	font := e.Font()
	idna := ucd.IDNASet()
	for _, theta := range []int{1, 2, 4, 6, 8} {
		theta := theta
		b.Run(thetaName(theta), func(b *testing.B) {
			var pairs int
			for i := 0; i < b.N; i++ {
				db, _ := simchar.Build(font, idna, simchar.Options{Threshold: theta})
				pairs = db.NumPairs()
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

func thetaName(t int) string {
	return "theta=" + string(rune('0'+t))
}

// BenchmarkSection22_BrowserGap evaluates the browser display policy
// over every detected homograph.
func BenchmarkSection22_BrowserGap(b *testing.B) {
	runExperiment(b, func(e *experiments.Env) error {
		_, err := experiments.Section22(e)
		return err
	})
}

// BenchmarkAblationMultiFont compares single-font SimChar against the
// Section 7.1 multi-style union.
func BenchmarkAblationMultiFont(b *testing.B) {
	e := benchSetup(b)
	e.DB() // warm
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.Table3(e)
		}
	})
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exp := experiments.Extension71(e)
			if len(exp.Comparisons) == 0 {
				b.Fatal("no comparisons")
			}
		}
	})
}

// BenchmarkAblationRasterization compares the centered 1:1 embedding
// (which keeps Δ equal to native pixel distance, as the paper's
// Figure 6 requires) against nearest-neighbour magnification.
func BenchmarkAblationRasterization(b *testing.B) {
	e := benchSetup(b)
	font := e.Font()
	g, ok := font.Glyph('e')
	if !ok {
		b.Fatal("no glyph for e")
	}
	b.Run("centered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Rasterize()
		}
	})
	b.Run("magnified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.RasterizeScaled()
		}
	})
}

// --- PR 2: cold start and ingestion benches ---

// BenchmarkColdStart compares the ways a process can obtain a ready
// engine: rebuilding the font + SimChar + UC pipeline from scratch
// (what every seed-era process paid — "build" is the full-font pipeline
// a production snapshot replaces, "build-fastfont" the CJK/Hangul-free
// variant) versus loading the compiled snapshot file. The acceptance
// bar for the snapshot subsystem is load ≥ 10× faster than the build it
// replaces.
func BenchmarkColdStart(b *testing.B) {
	refs := benchSetup(b).Refs().SLDs(10000)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fw, err := New(Config{})
			if err != nil {
				b.Fatal(err)
			}
			if fw.NewDetector(refs) == nil {
				b.Fatal("nil detector")
			}
		}
	})
	b.Run("build-fastfont", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fw, err := New(Config{FontScope: FontFast})
			if err != nil {
				b.Fatal(err)
			}
			if fw.NewDetector(refs) == nil {
				b.Fatal("nil detector")
			}
		}
	})
	fw, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/coldstart.snap"
	if err := fw.SaveSnapshot(path, fw.NewDetector(refs)); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("snapshot", func(b *testing.B) {
		b.SetBytes(st.Size())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, det, err := LoadSnapshot(path)
			if err != nil {
				b.Fatal(err)
			}
			if det == nil {
				b.Fatal("no embedded detector")
			}
		}
	})
}

// benchZoneLines builds a deterministic synthetic zone slice: mostly
// plain (non-IDN) lines, the rest decodable ACE labels that miss every
// reference — the steady-state composition of a TLD zone sweep. Lines
// draw their suffix from suffixes (round-robin over the rng), and with
// subdomains set, a fifth of them carry a www. prefix — the
// multi-label, multi-TLD shape the domain pipeline must ingest at the
// same cost as the single-TLD corpus. Every line is pre-verified to
// miss so the benchmark isolates the miss path.
func benchZoneLines(b *testing.B, det *core.Detector, n int, suffixes []string, subdomains bool) [][]byte {
	b.Helper()
	rng := stats.NewRNG(0x20e)
	cyr := []rune("бвгджзклмнптфцчшщыэюя") // no Latin twins in the DB
	lines := make([][]byte, 0, n)
	for len(lines) < n {
		var line string
		if rng.Intn(10) < 7 {
			bs := make([]byte, 5+rng.Intn(12))
			for i := range bs {
				bs[i] = byte('a' + rng.Intn(26))
			}
			line = string(bs)
		} else {
			rs := make([]rune, 4+rng.Intn(8))
			for i := range rs {
				rs[i] = cyr[rng.Intn(len(cyr))]
			}
			a, err := punycode.ToASCIILabel(string(rs))
			if err != nil {
				continue
			}
			line = a
		}
		if subdomains && rng.Intn(5) == 0 {
			line = "www." + line
		}
		line += suffixes[rng.Intn(len(suffixes))]
		buf := []byte(line)
		if fqdn, ok := NormalizeZoneLine(append([]byte(nil), buf...)); ok {
			if ms := det.DetectDomainBytes(fqdn); len(ms) != 0 {
				continue // exceedingly unlikely; keep the bench a pure miss path
			}
		}
		lines = append(lines, buf)
	}
	return lines
}

// BenchmarkIngestion measures the detect feeder path — raw zone line to
// normalized FQDN to verdict, including label splitting and punycode
// decode for ACE labels — on the miss path. Both pooled variants must
// run at 0 allocs/op (CI watches the -benchmem column): "pooled" is the
// PR-2-comparable pure-.com corpus, "pooled-multitld" mixes .com, .net,
// a co.uk-style multi-label suffix, an IDN TLD and www. subdomains to
// prove TLD-awareness costs neither allocations nor more than a few
// ns/line. The seed variant reproduces the Text/TrimSpace/ToLower/
// TrimSuffix per-line allocations the rewrite removed.
func BenchmarkIngestion(b *testing.B) {
	det, _ := benchDetector(b, homoglyph.SourceUC|homoglyph.SourceSimChar)
	lines := benchZoneLines(b, det, 4096, []string{".com"}, false)
	pooled := func(lines [][]byte) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, line := range lines {
					fqdn, ok := NormalizeZoneLine(line)
					if !ok {
						continue
					}
					if ms := det.DetectDomainBytes(fqdn); len(ms) != 0 {
						b.Fatal("unexpected match")
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(lines)), "ns/line")
		}
	}
	b.Run("pooled", pooled(lines))
	b.Run("pooled-multitld", pooled(benchZoneLines(b, det, 4096,
		[]string{".com", ".net", ".co.uk", ".xn--p1ai"}, true)))
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, line := range lines {
				domain := strings.TrimSpace(string(line)) // Scanner.Text() copy
				if domain == "" || !IsIDN(domain) {
					continue
				}
				label := strings.TrimSuffix(strings.ToLower(domain), ".com")
				if ms := det.DetectLabel(label); len(ms) != 0 {
					b.Fatal("unexpected match")
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(lines)), "ns/line")
	})
}

// --- PR 4: serving-layer benches ---

// benchServer spins up the HTTP serving layer over a 10k-reference
// engine — the load-generator fixture for the serve benches.
func benchServer(b *testing.B, refs []string) (*httptest.Server, *core.Engine) {
	b.Helper()
	e := benchSetup(b)
	engine := core.NewEngine(core.NewDetector(e.DB(), refs))
	srv := service.New(service.Config{Engine: engine})
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)
	return ts, engine
}

// benchClient returns an HTTP client whose idle pool matches the
// bench's parallelism: DefaultTransport keeps only 2 idle conns per
// host, which would make a parallel load test measure TCP connection
// setup (and risk ephemeral-port exhaustion at long -benchtime)
// instead of the detect path.
func benchClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
}

// BenchmarkServeDetect is the serving-layer load generator: parallel
// clients hammer POST /v1/detect over real HTTP (connection reuse,
// JSON round-trip, the bounded-concurrency gate — the whole request
// path), alternating a homograph hit and a zone-shaped miss. Reported
// alongside ns/op: requests/sec, and the server's own p50/p99 service
// time read back from /metrics — the numbers CI publishes as
// BENCH_serve.json.
func BenchmarkServeDetect(b *testing.B) {
	e := benchSetup(b)
	ts, _ := benchServer(b, e.Refs().SLDs(10000))
	bodies := [][]byte{
		[]byte(`{"fqdn":"xn--ggle-55da.com"}`),
		[]byte(`{"fqdn":"plainzonename.com"}`),
		[]byte(`{"fqdns":["xn--ggle-55da.net","miss.example.net","xn--fcebook-2fg.com"]}`),
	}
	var failed atomic.Uint64
	client := benchClient()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/v1/detect", "application/json",
				bytes.NewReader(bodies[i%len(bodies)]))
			i++
			if err != nil {
				failed.Add(1)
				continue
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				failed.Add(1)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
			}
		}
	})
	b.StopTimer()
	if n := failed.Load(); n != 0 {
		b.Fatalf("%d requests failed", n)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	var st service.Stats
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		b.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	b.ReportMetric(float64(st.P50Ns), "p50_ns")
	b.ReportMetric(float64(st.P99Ns), "p99_ns")
}

// BenchmarkServeReload is the zero-downtime acceptance bench: each
// iteration hot-swaps the serving state from a compiled snapshot file
// over POST /v1/reload (alternating two artifacts with disjoint
// reference sets) while background clients query continuously over
// HTTP. Every response must be error-free and exactly consistent with
// the epoch it reports — odd epochs hold the google set (probe
// matches), even the paypal set (probe misses) — and reported epochs
// may never precede one the checker already observed, so an answer
// can never be more than one swap stale. Run with -benchtime 100x or
// more (CI does) to prove ≥100 consecutive swaps under load;
// query_errors and epoch_violations are reported and must be zero.
func BenchmarkServeReload(b *testing.B) {
	e := benchSetup(b)
	dir := b.TempDir()
	snapA, snapB := dir+"/a.snap", dir+"/b.snap"
	if err := snapshot.WriteFile(snapA, e.DB(), core.NewDetector(e.DB(), []string{"google"})); err != nil {
		b.Fatal(err)
	}
	if err := snapshot.WriteFile(snapB, e.DB(), core.NewDetector(e.DB(), []string{"paypal"})); err != nil {
		b.Fatal(err)
	}
	ts, engine := benchServer(b, []string{"google"}) // epoch 1 = google = odd

	var stop atomic.Bool
	var queries, errors, violations atomic.Uint64
	var wg sync.WaitGroup
	client := benchClient()
	probe := []byte(`{"fqdn":"xn--ggle-55da.com"}`)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for !stop.Load() {
				resp, err := client.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(probe))
				if err != nil {
					errors.Add(1)
					continue
				}
				var out struct {
					Epoch   uint64            `json:"epoch"`
					Matches []json.RawMessage `json:"matches"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if decErr != nil || resp.StatusCode != http.StatusOK {
					errors.Add(1)
					continue
				}
				queries.Add(1)
				if (out.Epoch%2 == 1) != (len(out.Matches) == 1) {
					violations.Add(1) // answer from a different epoch than reported
				}
				if out.Epoch < lastEpoch {
					violations.Add(1) // served state older than one already seen
				}
				lastEpoch = out.Epoch
			}
		}()
	}

	reload := func(path string) {
		body := fmt.Sprintf(`{"snapshot":%q}`, path)
		resp, err := client.Post(ts.URL+"/v1/reload", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("reload: status %d", resp.StatusCode)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if engine.Epoch()%2 == 1 {
			reload(snapB)
		} else {
			reload(snapA)
		}
	}
	b.StopTimer()
	// The acceptance bar is ≥100 consecutive swaps; top up untimed if
	// the bench harness chose a smaller N.
	for extra := b.N; extra < 100; extra++ {
		if engine.Epoch()%2 == 1 {
			reload(snapB)
		} else {
			reload(snapA)
		}
	}
	stop.Store(true)
	wg.Wait()
	b.ReportMetric(float64(engine.Epoch()-1), "swaps")
	b.ReportMetric(float64(queries.Load()), "queries")
	b.ReportMetric(float64(errors.Load()), "query_errors")
	b.ReportMetric(float64(violations.Load()), "epoch_violations")
	if errors.Load() != 0 || violations.Load() != 0 {
		b.Fatalf("%d query errors, %d epoch violations across %d swaps",
			errors.Load(), violations.Load(), engine.Epoch()-1)
	}
	if queries.Load() == 0 {
		b.Fatal("no queries completed during the swap storm")
	}
}

// BenchmarkExtractIDNs measures the Step-2 filter on a zone-shaped
// corpus (~10% IDNs): the seed append-grow loop, the two-pass
// exact-size ExtractIDNs, and the aliasing ExtractIDNsBytes, which
// must allocate exactly once (the result slice) per call.
func BenchmarkExtractIDNs(b *testing.B) {
	rng := stats.NewRNG(0x51d)
	strs := make([]string, 0, 8192)
	byteLines := make([][]byte, 0, 8192)
	for i := 0; i < 8192; i++ {
		var line string
		if rng.Intn(10) == 0 {
			line = fmt.Sprintf("xn--idn%d-abc.com", i)
		} else {
			line = fmt.Sprintf("plainzonename%d.com", i)
		}
		strs = append(strs, line)
		byteLines = append(byteLines, []byte(line))
	}
	b.Run("seed-append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out []string
			for _, d := range strs {
				if IsIDN(d) {
					out = append(out, d)
				}
			}
			if len(out) == 0 {
				b.Fatal("no IDNs")
			}
		}
	})
	b.Run("prealloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(ExtractIDNs(strs)) == 0 {
				b.Fatal("no IDNs")
			}
		}
	})
	b.Run("bytes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(ExtractIDNsBytes(byteLines)) == 0 {
				b.Fatal("no IDNs")
			}
		}
	})
}

// BenchmarkSnapshotCodec isolates Marshal/Unmarshal throughput for the
// full artifact (database + 10k-reference detector).
func BenchmarkSnapshotCodec(b *testing.B) {
	e := benchSetup(b)
	det := core.NewDetector(e.DB(), e.Refs().SLDs(10000))
	data := snapshot.Marshal(e.DB(), det)
	b.Run("marshal", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			snapshot.Marshal(e.DB(), det)
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, _, err := snapshot.Unmarshal(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTriagePipeline measures the streaming measurement pipeline
// (detect → DNS probe → web classify → blacklist) end to end against
// the in-process simulated infrastructure: per iteration, every
// detected homograph of the shared registry flows through the full
// triage chain. domains/s is the pipeline's survey throughput —
// probes, fetches and feed lookups included — and records/iter pins
// the population size the number was measured over.
func BenchmarkTriagePipeline(b *testing.B) {
	e := benchSetup(b)
	reg, err := e.Registry()
	if err != nil {
		b.Fatal(err)
	}
	det := core.NewDetector(e.DB(), e.Refs().SLDs(10000))
	inputs := triage.InputsFromMatches(det.Detect(reg.IDNs()))
	if len(inputs) == 0 {
		b.Fatal("no homographs detected")
	}

	store := dnsserver.NewStore()
	store.AddZone(reg.BuildProbeZone(0))
	dns := dnsserver.NewServer(store)
	if err := dns.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer dns.Close()
	mapper, err := hostsim.NewMapper()
	if err != nil {
		b.Fatal(err)
	}
	web := websim.NewServer()
	if err := web.Start(); err != nil {
		b.Fatal(err)
	}
	defer web.Close()
	websim.Deploy(reg, web, mapper)
	feeds, err := e.Blacklists()
	if err != nil {
		b.Fatal(err)
	}

	newPipeline := func() *triage.Pipeline {
		p, err := triage.New(triage.Config{
			DNS: dnsclient.New(dns.Addr()),
			Classifier: &webclassify.Classifier{
				Resolve:     mapper.Resolve,
				UserAgent:   "BenchCrawler/1.0",
				IsMalicious: feeds.AnyContains,
			},
			Blacklists: feeds,
			DNSWorkers: 32,
			WebWorkers: 32,
			ParkingNS:  registry.ParkingProviders,
		})
		if err != nil {
			b.Fatal(err)
		}
		return p
	}

	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		records, err := newPipeline().Run(context.Background(), inputs)
		if err != nil {
			b.Fatal(err)
		}
		if len(records) != len(inputs) {
			b.Fatalf("%d records for %d inputs", len(records), len(inputs))
		}
		total += len(records)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "domains/s")
	b.ReportMetric(float64(len(inputs)), "records/iter")
}
