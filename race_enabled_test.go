//go:build race

package shamfinder

// raceEnabled lets allocation-count tests skip under the race
// detector, whose instrumentation allocates inside sync.Pool.
const raceEnabled = true
